/**
 * @file
 * Tests for the system entropy theory (Eqs. 1-7), including direct
 * reproduction of Table II's derived columns from its raw latency
 * columns and property-based checks of the three required properties
 * of Section II-A.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/entropy.hh"
#include "stats/rng.hh"

namespace
{

using namespace ahq::core;

TEST(LcBreakdown, ToleranceEquation)
{
    // A_i = 1 - TL_i0 / M_i (Eq. 1).
    const auto b = lcBreakdown({2.0, 2.0, 8.0});
    EXPECT_NEAR(b.tolerance, 0.75, 1e-12);
}

TEST(LcBreakdown, InterferenceEquation)
{
    // R_i = 1 - TL_i0 / TL_i1 (Eq. 2).
    const auto b = lcBreakdown({2.0, 4.0, 8.0});
    EXPECT_NEAR(b.interference, 0.5, 1e-12);
}

TEST(LcBreakdown, NoInterferenceWhenAtIdeal)
{
    const auto b = lcBreakdown({2.0, 2.0, 8.0});
    EXPECT_EQ(b.interference, 0.0);
    EXPECT_EQ(b.intolerable, 0.0);
    // ReT = 1 - TL1/M when A > R (Eq. 3).
    EXPECT_NEAR(b.remainingTolerance, 0.75, 1e-12);
}

TEST(LcBreakdown, NoiseBelowIdealClamped)
{
    const auto b = lcBreakdown({2.0, 1.8, 8.0});
    EXPECT_EQ(b.interference, 0.0);
    EXPECT_EQ(b.intolerable, 0.0);
    EXPECT_GE(b.remainingTolerance, 0.0);
}

TEST(LcBreakdown, ViolationActivatesQ)
{
    // TL1 beyond M: Q = 1 - M / TL1 (Eq. 4), ReT = 0 (Eq. 3).
    const auto b = lcBreakdown({2.0, 16.0, 8.0});
    EXPECT_EQ(b.remainingTolerance, 0.0);
    EXPECT_NEAR(b.intolerable, 0.5, 1e-12);
}

TEST(LcBreakdown, InfiniteLatencySaturates)
{
    const auto b = lcBreakdown(
        {2.0, std::numeric_limits<double>::infinity(), 8.0});
    EXPECT_EQ(b.interference, 1.0);
    EXPECT_EQ(b.intolerable, 1.0);
    EXPECT_EQ(b.remainingTolerance, 0.0);
}

TEST(LcBreakdown, BoundaryBetweenToleranceAndViolation)
{
    // TL1 == M: R == A exactly, so neither ReT nor Q activates.
    const auto b = lcBreakdown({2.0, 8.0, 8.0});
    EXPECT_EQ(b.remainingTolerance, 0.0);
    EXPECT_EQ(b.intolerable, 0.0);
}

// ----- Table II reproduction ------------------------------------

struct TableIiRow
{
    const char *app;
    double tl0, tl1, m;
    double a, r, ret, q;
};

class TableIi : public ::testing::TestWithParam<TableIiRow>
{
};

TEST_P(TableIi, DerivedColumnsMatchPaper)
{
    const TableIiRow row = GetParam();
    const auto b = lcBreakdown({row.tl0, row.tl1, row.m});
    EXPECT_NEAR(b.tolerance, row.a, 0.005) << row.app;
    EXPECT_NEAR(b.interference, row.r, 0.005) << row.app;
    EXPECT_NEAR(b.remainingTolerance, row.ret, 0.005) << row.app;
    EXPECT_NEAR(b.intolerable, row.q, 0.005) << row.app;
}

// Rows of Table II (Unmanaged, 6 and 8 cores; the 7-core row's Q
// column). TL_i0 / TL_i1 / M_i are the paper's raw measurements.
INSTANTIATE_TEST_SUITE_P(
    PaperRows, TableIi,
    ::testing::Values(
        TableIiRow{"xapian-6c", 2.77, 23.99, 4.22, 0.343, 0.885, 0.0,
                   0.824},
        TableIiRow{"moses-6c", 2.80, 16.54, 10.53, 0.734, 0.831, 0.0,
                   0.363},
        TableIiRow{"imgdnn-6c", 1.41, 14.35, 3.98, 0.646, 0.902, 0.0,
                   0.723},
        TableIiRow{"xapian-7c", 2.77, 7.13, 4.22, 0.343, 0.612, 0.0,
                   0.408},
        TableIiRow{"xapian-8c", 2.77, 4.18, 4.22, 0.343, 0.337,
                   0.009, 0.0},
        TableIiRow{"moses-8c", 2.80, 4.43, 10.53, 0.734, 0.368,
                   0.579, 0.0},
        TableIiRow{"imgdnn-8c", 1.41, 3.53, 3.98, 0.646, 0.601,
                   0.113, 0.0}));

TEST(LcEntropy, TableIiSixCoreRow)
{
    // E_LC = mean Q = 0.64 for the 6-core row (Eq. 5).
    const std::vector<LcObservation> lc{{2.77, 23.99, 4.22},
                                        {2.80, 16.54, 10.53},
                                        {1.41, 14.35, 3.98}};
    EXPECT_NEAR(lcEntropy(lc), 0.64, 0.01);
}

TEST(LcEntropy, TableIiEightCoreRowIsZero)
{
    const std::vector<LcObservation> lc{{2.77, 4.18, 4.22},
                                        {2.80, 4.43, 10.53},
                                        {1.41, 3.53, 3.98}};
    EXPECT_EQ(lcEntropy(lc), 0.0);
}

TEST(LcEntropy, EmptyIsZero)
{
    EXPECT_EQ(lcEntropy({}), 0.0);
}

// ----- E_BE (Eq. 6) ----------------------------------------------

TEST(BeEntropy, ZeroWithoutSlowdown)
{
    EXPECT_EQ(beEntropy({{2.0, 2.0}, {1.0, 1.0}}), 0.0);
    EXPECT_EQ(beEntropy({}), 0.0);
}

TEST(BeEntropy, HalfSlowdownSingleApp)
{
    // One app at half speed: E_BE = 1 - 1/2 = 0.5.
    EXPECT_NEAR(beEntropy({{2.0, 1.0}}), 0.5, 1e-12);
}

TEST(BeEntropy, HarmonicCombination)
{
    // Slowdowns 1 and 2: E_BE = 1 - 2/(1+2) = 1/3.
    EXPECT_NEAR(beEntropy({{1.0, 1.0}, {2.0, 1.0}}), 1.0 / 3.0,
                1e-12);
}

TEST(BeEntropy, SpeedupClampedToZeroContribution)
{
    // Measurement noise can make ipcReal > ipcSolo; that must not
    // produce negative entropy.
    EXPECT_EQ(beEntropy({{2.0, 2.5}}), 0.0);
}

TEST(BeEntropy, ApproachesOneUnderStarvation)
{
    EXPECT_GT(beEntropy({{2.0, 0.01}}), 0.99);
}

// ----- E_S (Eq. 7) ------------------------------------------------

TEST(SystemEntropy, LinearCombination)
{
    EXPECT_NEAR(systemEntropy(0.5, 0.25, 0.8, true, true),
                0.8 * 0.5 + 0.2 * 0.25, 1e-12);
}

TEST(SystemEntropy, DegeneratesWithOneClass)
{
    // Scenario 1: only LC apps -> E_S = E_LC regardless of RI.
    EXPECT_EQ(systemEntropy(0.4, 0.9, 0.8, true, false), 0.4);
    // Scenario 2: only BE apps -> E_S = E_BE.
    EXPECT_EQ(systemEntropy(0.9, 0.3, 0.8, false, true), 0.3);
    EXPECT_EQ(systemEntropy(0.9, 0.3, 0.8, false, false), 0.0);
}

TEST(SystemEntropy, TableIiSystemRows)
{
    // 6 cores: E_LC 0.64, E_BE 0.20 -> E_S 0.55 at RI = 0.8.
    EXPECT_NEAR(systemEntropy(0.636, 0.20, 0.8, true, true), 0.55,
                0.01);
    // 7 cores: E_LC 0.23, E_BE 0.03 -> E_S 0.19.
    EXPECT_NEAR(systemEntropy(0.23, 0.03, 0.8, true, true), 0.19,
                0.01);
}

// ----- yield -------------------------------------------------------

TEST(Yield, CountsElasticallySatisfiedApps)
{
    const std::vector<LcObservation> lc{
        {1.0, 3.0, 4.0},  // satisfied
        {1.0, 4.1, 4.0},  // within the 5% elasticity
        {1.0, 8.0, 4.0},  // violated
    };
    EXPECT_NEAR(yield(lc), 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(yield(lc, 0.0), 1.0 / 3.0, 1e-12);
    EXPECT_EQ(yield({}), 1.0);
}

// ----- full report -------------------------------------------------

TEST(ComputeEntropy, FullReportFields)
{
    const std::vector<LcObservation> lc{{2.77, 23.99, 4.22},
                                        {2.80, 16.54, 10.53},
                                        {1.41, 14.35, 3.98}};
    const std::vector<BeObservation> be{{2.63, 2.0}};
    const auto rep = computeEntropy(lc, be, 0.8);
    EXPECT_EQ(rep.lcDetail.size(), 3u);
    EXPECT_NEAR(rep.eLc, 0.64, 0.01);
    EXPECT_NEAR(rep.eBe, 1.0 - 1.0 / (2.63 / 2.0), 1e-9);
    EXPECT_NEAR(rep.eS, 0.8 * rep.eLc + 0.2 * rep.eBe, 1e-12);
    EXPECT_EQ(rep.yieldValue, 0.0);
    // System means mirror Table II's "System" row.
    EXPECT_NEAR(rep.meanTolerance, 0.57, 0.01);
    EXPECT_NEAR(rep.meanInterference, 0.87, 0.01);
    EXPECT_EQ(rep.meanRemainingTolerance, 0.0);
}

TEST(ComputeEntropy, ZeroBeAppsDegeneratesToLc)
{
    // A node running only LC apps: E_S must equal E_LC exactly,
    // not the RI-weighted value (which would shrink it by 20%).
    const std::vector<LcObservation> lc{{2.77, 23.99, 4.22},
                                        {2.80, 3.0, 10.53}};
    const auto rep = computeEntropy(lc, {}, 0.8);
    EXPECT_EQ(rep.eBe, 0.0);
    EXPECT_EQ(rep.eS, rep.eLc);
    EXPECT_GT(rep.eS, 0.0);
    // And the fully empty interval is all zeros with perfect yield.
    const auto empty = computeEntropy({}, {}, 0.8);
    EXPECT_EQ(empty.eLc, 0.0);
    EXPECT_EQ(empty.eBe, 0.0);
    EXPECT_EQ(empty.eS, 0.0);
    EXPECT_EQ(empty.yieldValue, 1.0);
}

TEST(ComputeEntropy, ZeroToleranceLcAppIsWellDefined)
{
    // A_i = 0: the ideal latency already sits at the threshold
    // (Eq. 1 numerator vanishes). Every derived term must stay
    // finite and in range, at ideal latency and under violation.
    const auto at_ideal = lcBreakdown({4.0, 4.0, 4.0});
    EXPECT_EQ(at_ideal.tolerance, 0.0);
    EXPECT_EQ(at_ideal.interference, 0.0);
    EXPECT_EQ(at_ideal.remainingTolerance, 0.0);
    EXPECT_EQ(at_ideal.intolerable, 0.0);

    const auto violated = lcBreakdown({4.0, 8.0, 4.0});
    EXPECT_EQ(violated.tolerance, 0.0);
    EXPECT_GT(violated.interference, 0.0);
    EXPECT_EQ(violated.remainingTolerance, 0.0);
    EXPECT_GT(violated.intolerable, 0.0);
    EXPECT_LE(violated.intolerable, 1.0);

    // A whole report over zero-tolerance apps stays in range.
    const auto rep = computeEntropy(
        {{4.0, 4.0, 4.0}, {4.0, 8.0, 4.0}}, {}, 0.8);
    EXPECT_GE(rep.eLc, 0.0);
    EXPECT_LE(rep.eLc, 1.0);
    EXPECT_EQ(rep.eS, rep.eLc);
}

// ----- required property 1: dimensionless, in [0, 1] ---------------

TEST(Properties, EntropyAlwaysInUnitInterval)
{
    ahq::stats::Rng rng(2024);
    for (int trial = 0; trial < 2000; ++trial) {
        std::vector<LcObservation> lc;
        std::vector<BeObservation> be;
        const int n = 1 + static_cast<int>(rng.uniformInt(5));
        const int m = static_cast<int>(rng.uniformInt(4));
        for (int i = 0; i < n; ++i) {
            const double m_i = rng.uniform(0.5, 100.0);
            const double tl0 = rng.uniform(0.01, m_i);
            const double tl1 = tl0 * rng.uniform(0.9, 50.0);
            lc.push_back({tl0, tl1, m_i});
        }
        for (int j = 0; j < m; ++j) {
            const double solo = rng.uniform(0.5, 4.0);
            be.push_back({solo, solo * rng.uniform(0.01, 1.2)});
        }
        const auto rep = computeEntropy(lc, be,
                                        rng.uniform(0.5, 1.0));
        EXPECT_GE(rep.eS, 0.0);
        EXPECT_LE(rep.eS, 1.0);
        EXPECT_GE(rep.eLc, 0.0);
        EXPECT_LE(rep.eLc, 1.0);
        EXPECT_GE(rep.eBe, 0.0);
        EXPECT_LE(rep.eBe, 1.0);
        for (const auto &b : rep.lcDetail) {
            EXPECT_GE(b.tolerance, 0.0);
            EXPECT_LE(b.tolerance, 1.0);
            EXPECT_GE(b.interference, 0.0);
            EXPECT_LE(b.interference, 1.0);
            // ReT and Q never both active (Eqs. 3-4 are exclusive).
            EXPECT_TRUE(b.remainingTolerance == 0.0 ||
                        b.intolerable == 0.0);
        }
    }
}

// ----- monotonicity properties of the per-app quantities -----------

TEST(Properties, QMonotoneInObservedLatency)
{
    // Worse observed latency never decreases Q (the analytic core of
    // required property 2: more resources -> lower TL1 -> lower Q).
    ahq::stats::Rng rng(7);
    for (int trial = 0; trial < 500; ++trial) {
        const double m = rng.uniform(1.0, 50.0);
        const double tl0 = rng.uniform(0.01, m);
        double prev_q = -1.0;
        double prev_ret = 2.0;
        for (double tl1 = tl0; tl1 < 20.0 * m; tl1 *= 1.3) {
            const auto b = lcBreakdown({tl0, tl1, m});
            EXPECT_GE(b.intolerable, prev_q);
            EXPECT_LE(b.remainingTolerance, prev_ret);
            prev_q = b.intolerable;
            prev_ret = b.remainingTolerance;
        }
    }
}

TEST(Properties, ELcMonotoneUnderUniformDegradation)
{
    ahq::stats::Rng rng(9);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<LcObservation> base;
        for (int i = 0; i < 4; ++i) {
            const double m = rng.uniform(1.0, 20.0);
            const double tl0 = rng.uniform(0.01, m);
            base.push_back({tl0, tl0 * rng.uniform(1.0, 3.0), m});
        }
        double prev = -1.0;
        for (double scale = 1.0; scale < 10.0; scale *= 1.5) {
            auto scaled = base;
            for (auto &o : scaled)
                o.actualTailMs *= scale;
            const double e = lcEntropy(scaled);
            EXPECT_GE(e, prev - 1e-12);
            prev = e;
        }
    }
}

TEST(Properties, EBeMonotoneInSlowdown)
{
    double prev = -1.0;
    for (double slow = 1.0; slow < 50.0; slow *= 1.4) {
        const double e = beEntropy({{2.0, 2.0 / slow}, {1.0, 0.9}});
        EXPECT_GE(e, prev);
        prev = e;
    }
}

TEST(Properties, RiWeightsLcMore)
{
    // With E_LC > E_BE, raising RI raises E_S.
    double prev = -1.0;
    for (double ri = 0.5; ri <= 1.0; ri += 0.1) {
        const double es = systemEntropy(0.8, 0.2, ri, true, true);
        EXPECT_GT(es, prev);
        prev = es;
    }
}

} // namespace

/**
 * @file
 * Tests for the resource equivalence solver (Section II-C / III-B).
 */

#include <gtest/gtest.h>

#include "core/equivalence.hh"

namespace
{

using namespace ahq::core;

TEST(MonotoneEnvelope, AlreadyMonotoneUnchanged)
{
    const EntropyCurve c{{4, 0.8}, {6, 0.5}, {8, 0.2}};
    EXPECT_EQ(monotoneEnvelope(c), c);
}

TEST(MonotoneEnvelope, WigglesFlattened)
{
    const EntropyCurve c{{4, 0.8}, {6, 0.3}, {8, 0.5}, {10, 0.1}};
    const auto env = monotoneEnvelope(c);
    // Non-increasing left to right.
    for (std::size_t i = 1; i < env.size(); ++i)
        EXPECT_GE(env[i - 1].second, env[i].second);
    // The final point is authoritative.
    EXPECT_EQ(env.back().second, 0.1);
}

TEST(MonotoneEnvelope, LowerEnvelopeClampsNoisyBumps)
{
    // A noisy bump above an earlier, cheaper point must be clamped
    // DOWN to the earlier value (lower envelope): a point already
    // achievable with 2 units cannot get worse at 3. The old code
    // ran a suffix max right-to-left, inflating the 2-unit point to
    // 0.7 (upper envelope) and shifting resourceForEntropy answers.
    const EntropyCurve c{{1, 0.9}, {2, 0.5}, {3, 0.7}, {4, 0.3}};
    const auto env = monotoneEnvelope(c);
    const EntropyCurve expected{{1, 0.9}, {2, 0.5}, {3, 0.5}, {4, 0.3}};
    EXPECT_EQ(env, expected);

    // Entropy 0.6 sits on the 1->2 segment: 1 + (0.9-0.6)/(0.9-0.5)
    // = 1.75 units. The buggy upper envelope put it on the 2->3
    // segment at 3.25 units — nearly double the resources.
    const auto r = resourceForEntropy(env, 0.6);
    ASSERT_TRUE(r.has_value());
    EXPECT_NEAR(*r, 1.75, 1e-12);
}

TEST(MonotoneEnvelope, FirstPointNeverInflated)
{
    // The cheapest sample is authoritative even when later points
    // are worse (the old suffix-max rewrote it upward).
    const EntropyCurve c{{2, 0.4}, {4, 0.8}, {6, 0.6}};
    const auto env = monotoneEnvelope(c);
    EXPECT_EQ(env.front().second, 0.4);
    for (std::size_t i = 1; i < env.size(); ++i)
        EXPECT_LE(env[i].second, env[i - 1].second);
    EXPECT_EQ(env[1].second, 0.4);
    EXPECT_EQ(env[2].second, 0.4);
}

TEST(ResourceForEntropy, ExactHitOnSample)
{
    const EntropyCurve c{{4, 0.8}, {6, 0.5}, {8, 0.2}};
    const auto r = resourceForEntropy(c, 0.5);
    ASSERT_TRUE(r.has_value());
    EXPECT_NEAR(*r, 6.0, 1e-12);
}

TEST(ResourceForEntropy, LinearInterpolation)
{
    const EntropyCurve c{{4, 0.8}, {8, 0.2}};
    // Target 0.5 -> halfway: 6 cores.
    const auto r = resourceForEntropy(c, 0.5);
    ASSERT_TRUE(r.has_value());
    EXPECT_NEAR(*r, 6.0, 1e-12);
    // Target 0.35 -> 7 cores.
    EXPECT_NEAR(*resourceForEntropy(c, 0.35), 7.0, 1e-12);
}

TEST(ResourceForEntropy, TargetAboveCurveGivesMinResource)
{
    const EntropyCurve c{{4, 0.8}, {8, 0.2}};
    const auto r = resourceForEntropy(c, 0.9);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(*r, 4.0);
}

TEST(ResourceForEntropy, UnreachableTargetIsNull)
{
    const EntropyCurve c{{4, 0.8}, {8, 0.2}};
    EXPECT_FALSE(resourceForEntropy(c, 0.1).has_value());
    EXPECT_FALSE(resourceForEntropy({}, 0.5).has_value());
}

TEST(ResourceForEntropy, FlatSegmentsHandled)
{
    const EntropyCurve c{{4, 0.5}, {6, 0.5}, {8, 0.1}};
    // Entropy 0.5 achieved already at 4.
    EXPECT_NEAR(*resourceForEntropy(c, 0.5), 4.0, 1e-12);
}

TEST(ResourceEquivalence, PositiveWhenSecondStrategyBetter)
{
    // p2 reaches E_S = 0.25 with two fewer cores: the Fig. 3(a)
    // reading (Unmanaged needs 7.61 cores, ARQ 5.61).
    const EntropyCurve p1{{4, 0.9}, {6, 0.6}, {8, 0.16}, {10, 0.05}};
    const EntropyCurve p2{{4, 0.55}, {6, 0.2}, {8, 0.07}, {10, 0.02}};
    const auto dr = resourceEquivalence(p1, p2, 0.25);
    ASSERT_TRUE(dr.has_value());
    EXPECT_GT(*dr, 0.0);
    EXPECT_LT(*dr, 4.0);
}

TEST(ResourceEquivalence, ZeroForIdenticalStrategies)
{
    const EntropyCurve p{{4, 0.9}, {8, 0.1}};
    const auto dr = resourceEquivalence(p, p, 0.4);
    ASSERT_TRUE(dr.has_value());
    EXPECT_NEAR(*dr, 0.0, 1e-12);
}

TEST(ResourceEquivalence, NullWhenEitherUnreachable)
{
    const EntropyCurve p1{{4, 0.9}, {8, 0.5}};
    const EntropyCurve p2{{4, 0.4}, {8, 0.1}};
    EXPECT_FALSE(resourceEquivalence(p1, p2, 0.2).has_value());
}

TEST(IsentropicLine, ProducesOnePointPerSecondary)
{
    const std::vector<double> ways{4, 8, 12};
    const std::vector<EntropyCurve> curves{
        {{4, 0.9}, {10, 0.5}},          // starved: unreachable
        {{4, 0.8}, {10, 0.2}},          // reachable
        {{4, 0.5}, {10, 0.1}},          // reachable with fewer cores
    };
    const auto line = isentropicLine(ways, curves, 0.3);
    ASSERT_EQ(line.size(), 3u);
    EXPECT_FALSE(line[0].primary.has_value());
    ASSERT_TRUE(line[1].primary.has_value());
    ASSERT_TRUE(line[2].primary.has_value());
    // More ways -> fewer cores needed for the same entropy.
    EXPECT_LT(*line[2].primary, *line[1].primary);
    EXPECT_EQ(line[1].secondary, 8.0);
}

} // namespace

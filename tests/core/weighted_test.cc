/**
 * @file
 * Tests for the weighted-entropy extension.
 */

#include <gtest/gtest.h>

#include "core/weighted.hh"
#include "stats/rng.hh"

namespace
{

using namespace ahq::core;

TEST(WeightedEntropy, UniformWeightsReduceToPaperDefinitions)
{
    const std::vector<LcObservation> lc{{2.77, 23.99, 4.22},
                                        {2.80, 16.54, 10.53},
                                        {1.41, 14.35, 3.98}};
    const std::vector<BeObservation> be{{2.63, 1.0}, {1.3, 0.9}};

    std::vector<WeightedLcObservation> wlc;
    for (const auto &o : lc)
        wlc.push_back({o, 1.0});
    std::vector<WeightedBeObservation> wbe;
    for (const auto &o : be)
        wbe.push_back({o, 1.0});

    EXPECT_NEAR(weightedLcEntropy(wlc), lcEntropy(lc), 1e-12);
    EXPECT_NEAR(weightedBeEntropy(wbe), beEntropy(be), 1e-12);
    EXPECT_NEAR(weightedSystemEntropy(wlc, wbe, 0.8),
                systemEntropy(lcEntropy(lc), beEntropy(be), 0.8,
                              true, true),
                1e-12);
}

TEST(WeightedEntropy, ScalingAllWeightsIsInvariant)
{
    std::vector<WeightedLcObservation> wlc{
        {{1.0, 5.0, 2.0}, 1.0}, {{1.0, 1.5, 2.0}, 3.0}};
    auto scaled = wlc;
    for (auto &w : scaled)
        w.weight *= 7.5;
    EXPECT_NEAR(weightedLcEntropy(wlc), weightedLcEntropy(scaled),
                1e-12);
}

TEST(WeightedEntropy, HeavierViolatedAppRaisesEntropy)
{
    // App 0 violated, app 1 fine: weighting app 0 more must raise
    // E_LC^w.
    const WeightedLcObservation violated{{1.0, 10.0, 2.0}, 1.0};
    const WeightedLcObservation fine{{1.0, 1.2, 2.0}, 1.0};
    const double uniform =
        weightedLcEntropy({violated, fine});
    const double skewed = weightedLcEntropy(
        {{violated.obs, 5.0}, {fine.obs, 1.0}});
    EXPECT_GT(skewed, uniform);
}

TEST(WeightedEntropy, HeavierSlowedBeAppRaisesEntropy)
{
    const WeightedBeObservation slowed{{2.0, 0.5}, 1.0};
    const WeightedBeObservation fine{{2.0, 2.0}, 1.0};
    const double uniform = weightedBeEntropy({slowed, fine});
    const double skewed =
        weightedBeEntropy({{slowed.obs, 5.0}, {fine.obs, 1.0}});
    EXPECT_GT(skewed, uniform);
}

TEST(WeightedEntropy, EmptyInputsAreZero)
{
    EXPECT_EQ(weightedLcEntropy({}), 0.0);
    EXPECT_EQ(weightedBeEntropy({}), 0.0);
    EXPECT_EQ(weightedSystemEntropy({}, {}), 0.0);
}

TEST(WeightedEntropy, SingleClassDegeneration)
{
    std::vector<WeightedLcObservation> wlc{{{1.0, 10.0, 2.0}, 2.0}};
    // Only LC apps: E_S ignores RI.
    EXPECT_NEAR(weightedSystemEntropy(wlc, {}, 0.8),
                weightedLcEntropy(wlc), 1e-12);
    std::vector<WeightedBeObservation> wbe{{{2.0, 1.0}, 2.0}};
    EXPECT_NEAR(weightedSystemEntropy({}, wbe, 0.8),
                weightedBeEntropy(wbe), 1e-12);
}

TEST(WeightedEntropy, StaysInUnitInterval)
{
    ahq::stats::Rng rng(31);
    for (int trial = 0; trial < 500; ++trial) {
        std::vector<WeightedLcObservation> wlc;
        std::vector<WeightedBeObservation> wbe;
        const int n = 1 + static_cast<int>(rng.uniformInt(4));
        for (int i = 0; i < n; ++i) {
            const double m = rng.uniform(0.5, 20.0);
            const double tl0 = rng.uniform(0.01, m);
            wlc.push_back({{tl0, tl0 * rng.uniform(1.0, 30.0), m},
                           rng.uniform(0.1, 10.0)});
            const double solo = rng.uniform(0.5, 3.0);
            wbe.push_back({{solo, solo * rng.uniform(0.05, 1.1)},
                           rng.uniform(0.1, 10.0)});
        }
        const double es =
            weightedSystemEntropy(wlc, wbe, rng.uniform(0.5, 1.0));
        EXPECT_GE(es, 0.0);
        EXPECT_LE(es, 1.0);
    }
}

} // namespace

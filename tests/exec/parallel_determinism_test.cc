/**
 * @file
 * The exec layer's determinism contract: batches, oracle searches
 * and fleet runs must be bitwise identical at 1 and N threads.
 * Every scenario owns its SimulationConfig::seed, so scheduling
 * interleaving must be unobservable in the results.
 */

#include <gtest/gtest.h>

#include "apps/catalog.hh"
#include "cluster/fleet.hh"
#include "cluster/oracle.hh"
#include "exec/scenario_runner.hh"
#include "exec/thread_pool.hh"
#include "sched/registry.hh"

namespace
{

using namespace ahq;
using cluster::SimulationConfig;
using cluster::SimulationResult;

SimulationConfig
shortConfig(std::uint64_t seed)
{
    SimulationConfig c;
    c.durationSeconds = 30.0;
    c.warmupEpochs = 20;
    c.seed = seed;
    return c;
}

std::vector<exec::ScenarioJob>
batch()
{
    std::vector<exec::ScenarioJob> jobs;
    std::uint64_t seed = 7;
    for (const auto &strategy :
         {"Unmanaged", "PARTIES", "CLITE", "ARQ"}) {
        for (double load : {0.2, 0.5, 0.8}) {
            cluster::Node node(
                machine::MachineConfig::xeonE52630v4(),
                {cluster::lcAt(apps::xapian(), load),
                 cluster::lcAt(apps::moses(), 0.2),
                 cluster::be(apps::stream())});
            jobs.push_back({strategy, node, shortConfig(seed++), ""});
        }
    }
    return jobs;
}

void
expectIdentical(const SimulationResult &a, const SimulationResult &b)
{
    EXPECT_DOUBLE_EQ(a.meanELc, b.meanELc);
    EXPECT_DOUBLE_EQ(a.meanEBe, b.meanEBe);
    EXPECT_DOUBLE_EQ(a.meanES, b.meanES);
    EXPECT_DOUBLE_EQ(a.yieldValue, b.yieldValue);
    EXPECT_EQ(a.violations, b.violations);
    ASSERT_EQ(a.meanP95Ms.size(), b.meanP95Ms.size());
    for (std::size_t i = 0; i < a.meanP95Ms.size(); ++i)
        EXPECT_DOUBLE_EQ(a.meanP95Ms[i], b.meanP95Ms[i]);
    ASSERT_EQ(a.meanIpc.size(), b.meanIpc.size());
    for (std::size_t i = 0; i < a.meanIpc.size(); ++i)
        EXPECT_DOUBLE_EQ(a.meanIpc[i], b.meanIpc[i]);
    ASSERT_EQ(a.epochs.size(), b.epochs.size());
    for (std::size_t e = 0; e < a.epochs.size(); ++e) {
        const auto &ea = a.epochs[e];
        const auto &eb = b.epochs[e];
        EXPECT_DOUBLE_EQ(ea.entropy.eS, eb.entropy.eS);
        ASSERT_EQ(ea.obs.size(), eb.obs.size());
        for (std::size_t i = 0; i < ea.obs.size(); ++i) {
            EXPECT_DOUBLE_EQ(ea.obs[i].p95Ms, eb.obs[i].p95Ms);
            EXPECT_DOUBLE_EQ(ea.obs[i].ipc, eb.obs[i].ipc);
        }
        ASSERT_EQ(ea.regionRes.size(), eb.regionRes.size());
        for (std::size_t r = 0; r < ea.regionRes.size(); ++r)
            EXPECT_EQ(ea.regionRes[r], eb.regionRes[r]);
    }
}

TEST(ParallelDeterminism, ScenarioRunnerMatchesSerialFieldByField)
{
    const auto jobs = batch();

    exec::ThreadPool serial_pool(1);
    exec::ThreadPool parallel_pool(4);
    const auto serial =
        exec::ScenarioRunner(&serial_pool).run(jobs);
    const auto parallel =
        exec::ScenarioRunner(&parallel_pool).run(jobs);

    ASSERT_EQ(serial.size(), jobs.size());
    ASSERT_EQ(parallel.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        expectIdentical(serial[i], parallel[i]);

    // The batch also matches running each job by hand.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const auto sched = sched::makeScheduler(jobs[i].strategy);
        cluster::EpochSimulator sim(jobs[i].node, jobs[i].config);
        expectIdentical(sim.run(*sched), parallel[i]);
    }
}

TEST(ParallelDeterminism, OracleSearchMatchesSerial)
{
    cluster::Node node(machine::MachineConfig::xeonE52630v4(),
                       {cluster::lcAt(apps::xapian(), 0.5),
                        cluster::lcAt(apps::moses(), 0.2),
                        cluster::be(apps::stream())});

    exec::ThreadPool serial_pool(1);
    exec::ThreadPool parallel_pool(4);
    cluster::OracleConfig serial_cfg;
    serial_cfg.wayStep = 4;
    serial_cfg.pool = &serial_pool;
    cluster::OracleConfig parallel_cfg = serial_cfg;
    parallel_cfg.pool = &parallel_pool;

    const auto iso_s =
        cluster::bestIsolatedPartition(node, serial_cfg);
    const auto iso_p =
        cluster::bestIsolatedPartition(node, parallel_cfg);
    EXPECT_EQ(iso_s.evaluated, iso_p.evaluated);
    EXPECT_DOUBLE_EQ(iso_s.report.eS, iso_p.report.eS);
    EXPECT_DOUBLE_EQ(iso_s.report.eLc, iso_p.report.eLc);
    EXPECT_DOUBLE_EQ(iso_s.report.eBe, iso_p.report.eBe);
    EXPECT_EQ(iso_s.layout.toString(), iso_p.layout.toString());

    const auto hyb_s =
        cluster::bestHybridPartition(node, serial_cfg);
    const auto hyb_p =
        cluster::bestHybridPartition(node, parallel_cfg);
    EXPECT_EQ(hyb_s.evaluated, hyb_p.evaluated);
    EXPECT_DOUBLE_EQ(hyb_s.report.eS, hyb_p.report.eS);
    EXPECT_EQ(hyb_s.layout.toString(), hyb_p.layout.toString());
    EXPECT_GT(hyb_s.evaluated, 0);
}

TEST(ParallelDeterminism, FleetRunMatchesSerial)
{
    auto build = [] {
        cluster::Fleet fleet;
        for (double load : {0.2, 0.5, 0.8}) {
            fleet.addNode(
                cluster::Node(
                    machine::MachineConfig::xeonE52630v4(),
                    {cluster::lcAt(apps::xapian(), load),
                     cluster::lcAt(apps::imgDnn(), 0.2),
                     cluster::be(apps::fluidanimate())}),
                sched::makeScheduler("ARQ"));
        }
        return fleet;
    };

    exec::ThreadPool serial_pool(1);
    exec::ThreadPool parallel_pool(4);
    auto f1 = build();
    auto f2 = build();
    const auto r1 = f1.run(shortConfig(42), &serial_pool);
    const auto r2 = f2.run(shortConfig(42), &parallel_pool);

    EXPECT_DOUBLE_EQ(r1.eLc, r2.eLc);
    EXPECT_DOUBLE_EQ(r1.eBe, r2.eBe);
    EXPECT_DOUBLE_EQ(r1.eS, r2.eS);
    EXPECT_DOUBLE_EQ(r1.yieldValue, r2.yieldValue);
    EXPECT_EQ(r1.violations, r2.violations);
    ASSERT_EQ(r1.nodes.size(), r2.nodes.size());
    for (std::size_t n = 0; n < r1.nodes.size(); ++n)
        expectIdentical(r1.nodes[n], r2.nodes[n]);
}

} // namespace

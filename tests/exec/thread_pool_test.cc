/**
 * @file
 * ThreadPool and parallelFor/parallelMap unit tests: startup and
 * shutdown, exception propagation, nested submission without
 * deadlock, and ordered result collection.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/jobs.hh"
#include "exec/parallel.hh"
#include "exec/thread_pool.hh"

namespace
{

using namespace ahq;

TEST(ThreadPool, StartupShutdownIdle)
{
    for (int n : {1, 2, 4, 8}) {
        exec::ThreadPool pool(n);
        EXPECT_EQ(pool.threads(), n);
    }
    // A non-positive request still yields a working 1-thread pool.
    exec::ThreadPool clamped(0);
    EXPECT_EQ(clamped.threads(), 1);
}

TEST(ThreadPool, DestructorDrainsPostedWork)
{
    std::atomic<int> ran{0};
    {
        exec::ThreadPool pool(2);
        for (int i = 0; i < 64; ++i)
            pool.post([&ran] { ++ran; });
    }
    EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, PostAfterShutdownThrows)
{
    exec::ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.post([&ran] { ++ran; });
    pool.shutdown();
    EXPECT_EQ(ran.load(), 1); // shutdown drained the queue
    // The old behavior silently enqueued onto a dead queue; now the
    // caller hears about it.
    EXPECT_THROW(pool.post([&ran] { ++ran; }), std::runtime_error);
    EXPECT_EQ(ran.load(), 1);
    pool.shutdown(); // idempotent
}

TEST(ThreadPool, ShutdownDrainsQueuedWork)
{
    exec::ThreadPool pool(1);
    std::atomic<int> ran{0};
    for (int i = 0; i < 128; ++i)
        pool.post([&ran] { ++ran; });
    pool.shutdown();
    EXPECT_EQ(ran.load(), 128);
}

TEST(ThreadPool, ConcurrentPostersVsShutdownLoseNoWork)
{
    // Posters race shutdown(): every post must either run (it won
    // the race) or throw (it lost) — never vanish into a queue no
    // worker reads. executed + rejected therefore accounts for
    // every attempt exactly once.
    for (int round = 0; round < 8; ++round) {
        exec::ThreadPool pool(2);
        std::atomic<int> executed{0};
        std::atomic<int> rejected{0};
        std::vector<std::thread> posters;
        for (int p = 0; p < 4; ++p) {
            posters.emplace_back([&] {
                for (int i = 0; i < 64; ++i) {
                    try {
                        pool.post([&executed] { ++executed; });
                    } catch (const std::runtime_error &) {
                        ++rejected;
                    }
                }
            });
        }
        pool.shutdown();
        for (auto &t : posters)
            t.join();
        EXPECT_EQ(executed.load() + rejected.load(), 4 * 64)
            << "round " << round;
    }
}

TEST(ThreadPool, SubmitReturnsValue)
{
    exec::ThreadPool pool(2);
    auto fut = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException)
{
    exec::ThreadPool pool(2);
    auto fut = pool.submit([]() -> int {
        throw std::runtime_error("task boom");
    });
    EXPECT_THROW((void)fut.get(), std::runtime_error);
}

TEST(ThreadPool, NestedSubmitNoDeadlock)
{
    exec::ThreadPool pool(1); // worst case: a single worker
    std::atomic<int> inner_ran{0};
    auto outer = pool.submit([&] {
        // Enqueue from inside a pool task; must not block.
        pool.post([&inner_ran] { ++inner_ran; });
        return exec::ThreadPool::onPoolThread();
    });
    EXPECT_TRUE(outer.get());
    // The destructor drains the nested task.
    auto fence = pool.submit([] { return true; });
    EXPECT_TRUE(fence.get());
    EXPECT_EQ(inner_ran.load(), 1);
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    exec::ThreadPool pool(2);
    auto fut = pool.submit([&] {
        std::vector<int> out(16, 0);
        exec::parallelFor(pool, out.size(), [&](std::size_t i) {
            out[i] = static_cast<int>(i);
        });
        return std::accumulate(out.begin(), out.end(), 0);
    });
    EXPECT_EQ(fut.get(), 120);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    exec::ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(257);
    for (auto &h : hits)
        h = 0;
    exec::parallelFor(pool, hits.size(),
                      [&](std::size_t i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroAndOneIndexRunInline)
{
    exec::ThreadPool pool(4);
    int calls = 0;
    exec::parallelFor(pool, 0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    exec::parallelFor(pool, 1, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, PropagatesFirstException)
{
    exec::ThreadPool pool(4);
    EXPECT_THROW(
        exec::parallelFor(pool, 64,
                          [&](std::size_t i) {
                              if (i == 13)
                                  throw std::runtime_error("13");
                          }),
        std::runtime_error);
}

TEST(ParallelMap, ResultsAreInInputOrder)
{
    exec::ThreadPool pool(4);
    std::vector<int> in(100);
    std::iota(in.begin(), in.end(), 0);
    const auto out = exec::parallelMap(
        pool, in, [](const int &v) { return v * v; });
    ASSERT_EQ(out.size(), in.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(Jobs, EnvAndOverrideResolution)
{
    EXPECT_GE(exec::defaultJobs(), 1);
    exec::setDefaultJobs(3);
    EXPECT_EQ(exec::defaultJobs(), 3);
    EXPECT_EQ(exec::globalPool().threads(), 3);
    exec::setDefaultJobs(0); // back to the environment default
    EXPECT_GE(exec::defaultJobs(), 1);
}

} // namespace

/**
 * @file
 * Design-layer tests: the (node x block) arm assignment is a pure,
 * balanced, seeded function of the design — the property every
 * downstream determinism guarantee leans on.
 */

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

#include "experiment/design.hh"

namespace
{

using namespace ahq;
using experiment::DesignKind;
using experiment::ExperimentDesign;

ExperimentDesign
switchback()
{
    ExperimentDesign d;
    d.kind = DesignKind::Switchback;
    d.blocksPerNode = 8;
    d.blockEpochs = 10;
    d.numNodes = 4;
    d.seed = 42;
    return d;
}

ExperimentDesign
interleaved()
{
    ExperimentDesign d = switchback();
    d.kind = DesignKind::Interleaved;
    return d;
}

TEST(ExperimentDesign, AssignmentIsPureAndDeterministic)
{
    const auto d = switchback();
    for (int n = 0; n < d.numNodes; ++n) {
        const auto first = experiment::nodeBlockArms(d, n);
        // Re-evaluating (any number of times, any order) yields the
        // same assignment: no hidden state between calls.
        EXPECT_EQ(experiment::nodeBlockArms(d, n), first);
    }
    // Node order must not matter either: querying node 3 first
    // changes nothing about node 0's blocks.
    const auto n0 = experiment::nodeBlockArms(d, 0);
    (void)experiment::nodeBlockArms(d, 3);
    EXPECT_EQ(experiment::nodeBlockArms(d, 0), n0);
}

TEST(ExperimentDesign, SwitchbackBalancesWithinEveryNode)
{
    const auto d = switchback();
    for (int n = 0; n < d.numNodes; ++n) {
        const auto arms = experiment::nodeBlockArms(d, n);
        ASSERT_EQ(static_cast<int>(arms.size()), d.blocksPerNode);
        int a = 0;
        for (const auto arm : arms) {
            ASSERT_TRUE(arm == 0 || arm == 1);
            a += arm == 0 ? 1 : 0;
        }
        EXPECT_EQ(a, d.blocksPerNode / 2) << "node " << n;
    }
}

TEST(ExperimentDesign, SwitchbackOrdersDifferAcrossNodes)
{
    // Per-node randomization: with 4 nodes x 8 blocks the odds of
    // all nodes drawing the same permutation are negligible, and
    // for this fixed seed they must not (otherwise block position
    // would be perfectly confounded with arm across the fleet).
    const auto d = switchback();
    std::set<std::vector<int>> orders;
    for (int n = 0; n < d.numNodes; ++n)
        orders.insert(experiment::nodeBlockArms(d, n));
    EXPECT_GT(orders.size(), 1u);
}

TEST(ExperimentDesign, SeedReshufflesTheAssignment)
{
    auto d = switchback();
    const auto before = experiment::nodeBlockArms(d, 0);
    bool changed = false;
    for (std::uint64_t s = 43; s < 48 && !changed; ++s) {
        d.seed = s;
        changed = experiment::nodeBlockArms(d, 0) != before;
    }
    EXPECT_TRUE(changed);
}

TEST(ExperimentDesign, InterleavedPartitionsNodesEvenly)
{
    const auto d = interleaved();
    int a = 0;
    for (int n = 0; n < d.numNodes; ++n) {
        const auto arms = experiment::nodeBlockArms(d, n);
        ASSERT_EQ(static_cast<int>(arms.size()), d.blocksPerNode);
        // A node runs one arm for the whole experiment.
        for (const auto arm : arms)
            EXPECT_EQ(arm, arms.front());
        a += arms.front() == 0 ? 1 : 0;
    }
    EXPECT_EQ(a, d.numNodes / 2);
}

TEST(ExperimentDesign, ScheduleMatchesBlockArms)
{
    const auto d = switchback();
    for (int n = 0; n < d.numNodes; ++n) {
        const auto sched = experiment::nodeSchedule(d, n);
        const auto arms = experiment::nodeBlockArms(d, n);
        EXPECT_EQ(sched.blockEpochs, d.blockEpochs);
        for (int b = 0; b < d.blocksPerNode; ++b)
            for (int e = 0; e < d.blockEpochs; ++e)
                EXPECT_EQ(sched.armAt(b * d.blockEpochs + e),
                          arms[b]);
    }
}

TEST(ExperimentDesign, ValidateRejectsBadGeometry)
{
    auto odd = switchback();
    odd.blocksPerNode = 7; // switchback needs an even split
    EXPECT_THROW(experiment::validateDesign(odd),
                 std::invalid_argument);

    auto tiny = switchback();
    tiny.blocksPerNode = 1;
    EXPECT_THROW(experiment::validateDesign(tiny),
                 std::invalid_argument);

    auto zero_epochs = switchback();
    zero_epochs.blockEpochs = 0;
    EXPECT_THROW(experiment::validateDesign(zero_epochs),
                 std::invalid_argument);

    auto no_nodes = switchback();
    no_nodes.numNodes = 0;
    EXPECT_THROW(experiment::validateDesign(no_nodes),
                 std::invalid_argument);

    auto lone = interleaved();
    lone.numNodes = 1; // a one-node partition has an empty arm
    EXPECT_THROW(experiment::validateDesign(lone),
                 std::invalid_argument);

    EXPECT_NO_THROW(experiment::validateDesign(switchback()));
    EXPECT_NO_THROW(experiment::validateDesign(interleaved()));
}

TEST(ExperimentDesign, KindNamesRoundTrip)
{
    EXPECT_EQ(experiment::designKindFromName("switchback"),
              DesignKind::Switchback);
    EXPECT_EQ(experiment::designKindFromName("interleaved"),
              DesignKind::Interleaved);
    EXPECT_STREQ(
        experiment::designKindName(DesignKind::Switchback),
        "switchback");
    EXPECT_STREQ(
        experiment::designKindName(DesignKind::Interleaved),
        "interleaved");
    EXPECT_THROW(experiment::designKindFromName("crossover"),
                 std::invalid_argument);
}

} // namespace

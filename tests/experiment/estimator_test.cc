/**
 * @file
 * Estimator tests on synthetic runs where the truth is known in
 * closed form. The workhorse is an M/M/1 switchback: each arm's
 * clean sojourn time is 1/(mu - lambda), blocks inherit the queue
 * the previous block left behind (Little's law, Q = lambda * W),
 * and the inherited queue drains into the measured metric — the
 * carryover channel that biases the naive contrast and that
 * Differences-in-Q prices out.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "experiment/design.hh"
#include "experiment/estimator.hh"
#include "stats/rng.hh"

namespace
{

using namespace ahq;
using experiment::BlockStat;
using experiment::EstimatorConfig;
using experiment::ExperimentDesign;

/** M/M/1 parameters for the synthetic switchback. */
struct Mm1
{
    double lambda = 80.0; // arrivals per second (both arms)
    double muA = 100.0;   // arm A service rate
    double muB = 92.0;    // arm B service rate

    /** Drain cost per inherited request, seconds of extra sojourn. */
    double gamma = 0.01;

    /** Measurement noise sigma, seconds. */
    double sigma = 0.002;

    double waitA() const { return 1.0 / (muA - lambda); }
    double waitB() const { return 1.0 / (muB - lambda); }
    double truth() const { return waitA() - waitB(); }
};

/**
 * Materialize the switchback as BlockStats: block b's metric is the
 * arm's closed-form W plus gamma times the queue inherited from
 * block b-1 (lambda * W of the previous arm — what an M/M/1 in
 * steady state leaves behind) plus seeded noise.
 */
std::vector<BlockStat>
mm1Blocks(const ExperimentDesign &design, const Mm1 &m)
{
    std::vector<BlockStat> blocks;
    stats::Rng rng = stats::Rng(design.seed).split(0x3317);
    for (int n = 0; n < design.numNodes; ++n) {
        const auto arms = experiment::nodeBlockArms(design, n);
        double carried = 0.0; // queue left by the previous block
        for (int b = 0; b < design.blocksPerNode; ++b) {
            const double w =
                arms[b] == 0 ? m.waitA() : m.waitB();
            BlockStat s;
            s.node = n;
            s.block = b;
            s.arm = arms[b];
            s.epochs = design.blockEpochs;
            s.startQueue = carried;
            s.meanES = w + m.gamma * carried +
                       rng.normal(0.0, m.sigma);
            s.meanP95Ms = 1000.0 * s.meanES;
            s.meanQueue = m.lambda * w + 0.5 * carried;
            s.meanArrivalRate = m.lambda;
            s.violRate = 0.0;
            blocks.push_back(s);
            carried = m.lambda * w;
        }
    }
    return blocks;
}

ExperimentDesign
mm1Design()
{
    ExperimentDesign d;
    d.kind = experiment::DesignKind::Switchback;
    d.blocksPerNode = 12;
    d.blockEpochs = 10;
    d.numNodes = 4;
    d.seed = 7;
    return d;
}

TEST(DQEstimator, Mm1ClosedFormBiasOrdering)
{
    const Mm1 m;
    const auto design = mm1Design();
    const auto blocks = mm1Blocks(design, m);

    EstimatorConfig cfg;
    cfg.seed = design.seed;
    const auto est = experiment::estimate(blocks, cfg);

    const double truth = m.truth();
    const double naive_err =
        std::abs(est.es.naive.estimate - truth);
    const double dq_err = std::abs(est.es.dq.estimate - truth);
    const double mixed_err =
        std::abs(est.es.mixed.estimate - truth);

    // The carryover drain biases the naive contrast; the
    // regression adjustment prices it out. DQ must land closer to
    // the closed form, and materially so (not a coin flip).
    EXPECT_LT(dq_err, 0.5 * naive_err)
        << "naive " << est.es.naive.estimate << " dq "
        << est.es.dq.estimate << " truth " << truth;

    // The inverse-variance blend can only interpolate, so it never
    // does worse than the worse component.
    EXPECT_LE(mixed_err, naive_err + 1e-12);

    // DQ's interval covers the closed form.
    EXPECT_LE(est.es.dq.lo, truth);
    EXPECT_GE(est.es.dq.hi, truth);
}

TEST(DQEstimator, Mm1RecoversCarryoverSlope)
{
    // With noise off, the regression adjustment is exact: the
    // within-arm spread of startQueue identifies gamma, so DQ hits
    // the closed form to float precision while naive misses by
    // gamma times the arms' inherited-queue imbalance.
    Mm1 m;
    m.sigma = 0.0;
    const auto design = mm1Design();
    const auto blocks = mm1Blocks(design, m);

    EstimatorConfig cfg;
    cfg.resamples = 0; // point estimates only
    const auto est = experiment::estimate(blocks, cfg);

    EXPECT_NEAR(est.es.dq.estimate, m.truth(), 1e-9);
    EXPECT_GT(std::abs(est.es.naive.estimate - m.truth()), 1e-4);
}

TEST(DQEstimator, EstimatesAreDeterministic)
{
    const Mm1 m;
    const auto blocks = mm1Blocks(mm1Design(), m);
    EstimatorConfig cfg;
    const auto a = experiment::estimate(blocks, cfg);
    const auto b = experiment::estimate(blocks, cfg);
    EXPECT_EQ(a.es.mixed.lo, b.es.mixed.lo);
    EXPECT_EQ(a.es.mixed.hi, b.es.mixed.hi);
    EXPECT_EQ(a.p95Ms.dq.lo, b.p95Ms.dq.lo);
    EXPECT_EQ(a.violations.naive.hi, b.violations.naive.hi);
    EXPECT_EQ(a.es.alpha, b.es.alpha);
}

TEST(DQEstimator, DegenerateBootstrapForfeitsWeight)
{
    // All queues zero: Little's law has no signal, every DQ-p95
    // replicate is identical. The zero-variance estimator must
    // forfeit its weight (alpha -> 1, all naive), not absorb it.
    std::vector<BlockStat> blocks;
    stats::Rng rng(11);
    for (int b = 0; b < 16; ++b) {
        BlockStat s;
        s.node = 0;
        s.block = b;
        s.arm = b % 2;
        s.epochs = 5;
        s.meanP95Ms = (s.arm == 0 ? 40.0 : 45.0) + rng.normal();
        s.meanES = 0.1 * s.meanP95Ms;
        s.meanQueue = 0.0;
        s.meanArrivalRate = 100.0;
        s.startQueue = 0.0;
        s.violRate = 0.0;
        blocks.push_back(s);
    }
    const auto est =
        experiment::estimate(blocks, EstimatorConfig{});
    EXPECT_EQ(est.p95Ms.alpha, 1.0);
    EXPECT_EQ(est.p95Ms.mixed.estimate, est.p95Ms.naive.estimate);
    // The violation series is constant in BOTH estimators: the
    // blend has nothing to choose between and splits evenly.
    EXPECT_EQ(est.violations.alpha, 0.5);
}

TEST(DQEstimator, SingleArmIsInconclusive)
{
    std::vector<BlockStat> blocks(4);
    for (int b = 0; b < 4; ++b) {
        blocks[b].arm = 0;
        blocks[b].block = b;
        blocks[b].meanES = 0.5;
    }
    const auto est =
        experiment::estimate(blocks, EstimatorConfig{});
    EXPECT_EQ(est.blocksA, 4);
    EXPECT_EQ(est.blocksB, 0);
    EXPECT_EQ(experiment::verdictOf(est),
              experiment::Verdict::Inconclusive);
}

TEST(DQEstimator, VerdictNamesAreStable)
{
    using experiment::Verdict;
    EXPECT_STREQ(experiment::verdictName(Verdict::ArmABetter),
                 "arm_a_better");
    EXPECT_STREQ(experiment::verdictName(Verdict::ArmBBetter),
                 "arm_b_better");
    EXPECT_STREQ(experiment::verdictName(Verdict::Inconclusive),
                 "inconclusive");
}

} // namespace

/**
 * @file
 * End-to-end harness tests: the experiment is a pure function of
 * (seed, design) at any thread count — byte-identical traces,
 * identical estimates — and under chaos-composed load spikes the
 * carryover-aware estimators keep their coverage promise where the
 * naive contrast provably loses it (an A/A experiment has a known
 * truth of exactly zero).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "exec/thread_pool.hh"
#include "experiment/harness.hh"
#include "fault/plan.hh"
#include "obs/trace_sink.hh"

namespace
{

using namespace ahq;
using experiment::ExperimentRunConfig;

/** A small but real two-node switchback (ARQ vs Unmanaged). */
ExperimentRunConfig
smallConfig()
{
    ExperimentRunConfig cfg;
    cfg.design.kind = experiment::DesignKind::Switchback;
    cfg.design.armA = "ARQ";
    cfg.design.armB = "Unmanaged";
    cfg.design.numNodes = 2;
    cfg.design.blocksPerNode = 4;
    cfg.design.blockEpochs = 6;
    cfg.design.seed = 42;
    cfg.estimator.resamples = 200;
    cfg.estimator.seed = 42;
    cfg.base.seed = 42;
    cfg.load.lcPerNode = 2;
    cfg.load.bePerNode = 1;
    cfg.load.numTenants = 16;
    return cfg;
}

TEST(ExperimentHarness, BlocksCoverTheFullDesign)
{
    const auto cfg = smallConfig();
    const auto res = experiment::runExperiment(cfg);

    const int expected =
        cfg.design.numNodes * cfg.design.blocksPerNode;
    ASSERT_EQ(static_cast<int>(res.blocks.size()), expected);
    // Node-major, block order, arms matching the design.
    std::size_t i = 0;
    for (int n = 0; n < cfg.design.numNodes; ++n) {
        const auto arms =
            experiment::nodeBlockArms(cfg.design, n);
        for (int b = 0; b < cfg.design.blocksPerNode; ++b, ++i) {
            EXPECT_EQ(res.blocks[i].node, n);
            EXPECT_EQ(res.blocks[i].block, b);
            EXPECT_EQ(res.blocks[i].arm, arms[b]);
            EXPECT_EQ(res.blocks[i].epochs,
                      cfg.design.blockEpochs);
        }
    }
    // Switchback actually swaps policies mid-run on every node.
    EXPECT_GT(res.policySwaps, 0);
}

TEST(ExperimentHarness, TraceBytesIdenticalAtAnyThreadCount)
{
    std::vector<std::string> traces;
    std::vector<double> mixed_lo, mixed_hi;
    std::vector<experiment::Verdict> verdicts;
    for (const int threads : {1, 4, 16}) {
        exec::ThreadPool pool(threads);
        auto cfg = smallConfig();
        obs::BufferTraceSink sink;
        cfg.base.obs.sink = &sink;
        cfg.base.obs.scenario = "exp";
        const auto res = experiment::runExperiment(cfg, &pool);
        traces.push_back(sink.str());
        mixed_lo.push_back(res.estimates.es.mixed.lo);
        mixed_hi.push_back(res.estimates.es.mixed.hi);
        verdicts.push_back(res.verdict);
    }
    ASSERT_FALSE(traces[0].empty());
    EXPECT_EQ(traces[0], traces[1]);
    EXPECT_EQ(traces[0], traces[2]);
    EXPECT_EQ(mixed_lo[0], mixed_lo[1]);
    EXPECT_EQ(mixed_lo[0], mixed_lo[2]);
    EXPECT_EQ(mixed_hi[0], mixed_hi[1]);
    EXPECT_EQ(mixed_hi[0], mixed_hi[2]);
    EXPECT_EQ(verdicts[0], verdicts[1]);
    EXPECT_EQ(verdicts[0], verdicts[2]);
}

TEST(ExperimentHarness, RerunIsBitwiseReproducible)
{
    const auto cfg = smallConfig();
    const auto a = experiment::runExperiment(cfg);
    const auto b = experiment::runExperiment(cfg);
    ASSERT_EQ(a.blocks.size(), b.blocks.size());
    for (std::size_t i = 0; i < a.blocks.size(); ++i) {
        EXPECT_EQ(a.blocks[i].meanES, b.blocks[i].meanES);
        EXPECT_EQ(a.blocks[i].startQueue, b.blocks[i].startQueue);
    }
    EXPECT_EQ(a.verdict, b.verdict);
    EXPECT_EQ(a.estimates.es.mixed.estimate,
              b.estimates.es.mixed.estimate);
}

/**
 * The chaos-composed A/A configuration: both arms run the same
 * scheduler, so the true contrast of every metric is exactly zero
 * by construction — whatever an estimator reports beyond zero is
 * estimation error. Injected load spikes slam the queues
 * mid-experiment; the backlog they leave behind drains into
 * whichever blocks follow, and for this seed the block order lines
 * the contaminated blocks up behind one arm.
 */
ExperimentRunConfig
chaosAAConfig(std::uint64_t seed)
{
    ExperimentRunConfig cfg;
    cfg.design.kind = experiment::DesignKind::Switchback;
    cfg.design.armA = "Unmanaged";
    cfg.design.armB = "Unmanaged";
    cfg.design.numNodes = 4;
    cfg.design.blocksPerNode = 4;
    cfg.design.blockEpochs = 6;
    cfg.design.seed = seed;
    cfg.estimator.resamples = 800;
    cfg.estimator.seed = seed;
    cfg.base.seed = seed;
    cfg.base.noiseSigma = 0.002;
    // Let the surge bequeath a deep queue to the next block
    // instead of truncating it at the default cap.
    cfg.base.queueCapSeconds = 1.0;
    // A homogeneous, comfortably-underloaded fleet: contamination
    // from the spike dominates block-to-block noise instead of
    // drowning in saturated nodes.
    cfg.load.lcPerNode = 2;
    cfg.load.bePerNode = 1;
    cfg.load.numTenants = 4;
    cfg.load.baseLoad = 0.2;
    cfg.load.peakLoad = 0.3;
    cfg.load.seed = seed;
    return cfg;
}

fault::FaultPlan
spikePlan()
{
    // One violent single-epoch surge per LC slot in the LAST epoch
    // of block 0 (epochs are 500 ms; blocks are 3 s). The direct
    // hit is confined to one of block 0's six epochs, but the
    // backlog it leaves behind drains through most of block 1 —
    // almost all of what the spike does to the estimate travels
    // through the inherited queue, the channel Differences-in-Q
    // prices out.
    std::istringstream in(
        R"({"fault": "load_spike", "app": 0, "from_s": 2.5, "until_s": 3.0, "factor": 30.0})"
        "\n"
        R"({"fault": "load_spike", "app": 1, "from_s": 2.5, "until_s": 3.0, "factor": 30.0})"
        "\n");
    return fault::FaultPlan::fromStream(in, "spikes");
}

TEST(ExperimentHarness, ChaosComposedNaiveLosesCoverageDqKeepsIt)
{
    // Seed 332 realizes the failure mode the estimator exists for:
    // the randomized block order happens to put every node's
    // post-spike block in arm B, so arm B inherits all of the
    // spike's backlog while the direct (in-spike) epochs stay
    // balanced across arms.
    const auto plan = spikePlan();
    auto cfg = chaosAAConfig(332);
    cfg.base.faults = &plan;
    const auto res = experiment::runExperiment(cfg);
    const auto &es = res.estimates.es;

    // Truth is exactly 0 (A/A). The naive 95% interval excludes
    // it — the spike-fed backlog landed asymmetrically across the
    // arms and the naive contrast books that carryover as a
    // scheduler effect.
    EXPECT_TRUE(es.naive.lo > 0.0 || es.naive.hi < 0.0)
        << "naive [" << es.naive.lo << ", " << es.naive.hi << "]";

    // Differences-in-Q prices the inherited queue out and keeps
    // coverage; so does the blend built on it.
    EXPECT_LE(es.dq.lo, 0.0);
    EXPECT_GE(es.dq.hi, 0.0);
    EXPECT_LE(es.mixed.lo, 0.0);
    EXPECT_GE(es.mixed.hi, 0.0);

    // And the DQ point error is smaller than the naive one.
    EXPECT_LT(std::abs(es.dq.estimate),
              std::abs(es.naive.estimate));
}

} // namespace

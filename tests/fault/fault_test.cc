/**
 * @file
 * Fault-injection tests: plan parsing, injector determinism, the
 * simulator's degradation seams (stale samples, frozen knobs, load
 * spikes), the chaos fuzz sweep running every scheduler under the
 * strict invariant auditor with faults active, byte-identical
 * faulted traces at any thread count, and Fleet crash failover.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/catalog.hh"
#include "check/check.hh"
#include "cluster/epoch_sim.hh"
#include "cluster/fleet.hh"
#include "exec/scenario_runner.hh"
#include "exec/thread_pool.hh"
#include "fault/injector.hh"
#include "fault/plan.hh"
#include "obs/metrics.hh"
#include "obs/trace_sink.hh"
#include "sched/arq.hh"
#include "sched/registry.hh"
#include "stats/rng.hh"

namespace
{

using namespace ahq;

cluster::Node
canonicalNode()
{
    return cluster::Node(
        machine::MachineConfig::xeonE52630v4().withAvailable(6, 12,
                                                             6),
        {cluster::lcAt(apps::xapian(), 0.5),
         cluster::lcAt(apps::moses(), 0.2),
         cluster::be(apps::stream())});
}

TEST(FaultPlan, ParsesEveryDirectiveKind)
{
    std::istringstream in(
        "# chaos plan\n"
        "\n"
        "{\"fault\":\"measurement\",\"p_drop\":0.1,"
        "\"extra_sigma\":0.05,\"apps\":[0,2]}\n"
        "{\"fault\":\"actuation\",\"p_fail\":0.2,"
        "\"mode\":\"partial\",\"retries\":3,"
        "\"p_retry_fail\":0.4}\n"
        "{\"fault\":\"load_spike\",\"app\":1,\"from_s\":2,"
        "\"until_s\":5,\"factor\":1.8}\n"
        "{\"fault\":\"node_crash\",\"node\":1,\"at_s\":4}\n");
    const auto plan = fault::FaultPlan::fromStream(in, "inline");

    EXPECT_TRUE(plan.active());
    ASSERT_TRUE(plan.measurement().has_value());
    EXPECT_NEAR(plan.measurement()->pDrop, 0.1, 1e-12);
    EXPECT_NEAR(plan.measurement()->extraSigma, 0.05, 1e-12);
    EXPECT_TRUE(plan.measurement()->appliesTo(0));
    EXPECT_FALSE(plan.measurement()->appliesTo(1));
    EXPECT_TRUE(plan.measurement()->appliesTo(2));

    ASSERT_TRUE(plan.actuation().has_value());
    EXPECT_NEAR(plan.actuation()->pFail, 0.2, 1e-12);
    EXPECT_EQ(plan.actuation()->mode,
              fault::ActuationFault::Mode::Partial);
    EXPECT_EQ(plan.actuation()->retries, 3);
    EXPECT_NEAR(plan.actuation()->pRetryFail, 0.4, 1e-12);

    ASSERT_EQ(plan.spikes().size(), 1u);
    EXPECT_EQ(plan.spikes()[0].app, 1);
    EXPECT_TRUE(plan.spikes()[0].activeAt(2.0));
    EXPECT_TRUE(plan.spikes()[0].activeAt(4.99));
    EXPECT_FALSE(plan.spikes()[0].activeAt(5.0));

    ASSERT_EQ(plan.crashes().size(), 1u);
    EXPECT_EQ(plan.crashes()[0].node, 1);
    EXPECT_NEAR(plan.crashes()[0].atS, 4.0, 1e-12);
}

TEST(FaultPlan, RejectsMalformedDirectives)
{
    auto reject = [](const std::string &text) {
        std::istringstream in(text);
        EXPECT_THROW(
            (void)fault::FaultPlan::fromStream(in, "bad"),
            std::runtime_error)
            << text;
    };
    reject("not json\n");
    reject("{\"type\":\"measurement\"}\n"); // missing 'fault' key
    reject("{\"fault\":\"quantum\"}\n");    // unknown kind
    reject("{\"fault\":\"measurement\",\"p_drop\":1.5}\n");
    reject("{\"fault\":\"measurement\",\"extra_sigma\":-1}\n");
    reject("{\"fault\":\"measurement\"}\n"
           "{\"fault\":\"measurement\"}\n"); // duplicate
    reject("{\"fault\":\"actuation\",\"mode\":\"maybe\"}\n");
    reject("{\"fault\":\"actuation\",\"retries\":-1}\n");
    reject("{\"fault\":\"load_spike\",\"app\":0,\"from_s\":5,"
           "\"until_s\":2,\"factor\":2}\n");
    reject("{\"fault\":\"load_spike\",\"app\":0,\"from_s\":0,"
           "\"until_s\":2,\"factor\":0}\n");
    reject("{\"fault\":\"node_crash\",\"node\":0,\"at_s\":-1}\n");
    EXPECT_THROW((void)fault::FaultPlan::fromFile(
                     "/tmp/ahq_no_such_plan.jsonl"),
                 std::runtime_error);
}

TEST(FaultPlan, EmptyPlanIsInactive)
{
    EXPECT_FALSE(fault::FaultPlan{}.active());
    std::istringstream in("# only comments\n\n");
    EXPECT_FALSE(
        fault::FaultPlan::fromStream(in, "empty").active());
    const auto chaos = fault::FaultPlan::builtinChaos();
    EXPECT_TRUE(chaos.active());
    EXPECT_TRUE(chaos.crashes().empty());
}

TEST(FaultInjector, DeterministicPerSeedAndPlan)
{
    const auto plan = fault::FaultPlan::builtinChaos();
    auto draw = [&](std::uint64_t seed) {
        fault::FaultInjector inj(plan, seed, {});
        std::vector<int> drops;
        std::vector<double> noise;
        for (int e = 0; e < 200; ++e) {
            inj.beginEpoch(e, e * 0.5);
            for (int app = 0; app < 3; ++app) {
                double mult = 1.0;
                drops.push_back(
                    inj.sampleMeasurement(app, e, e * 0.5, &mult)
                        ? 0
                        : 1);
                noise.push_back(mult);
            }
        }
        return std::make_pair(drops, noise);
    };

    const auto a = draw(42);
    const auto b = draw(42);
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);

    // A different seed draws a different fault pattern.
    const auto c = draw(43);
    EXPECT_NE(a.first, c.first);

    // The plan is sampled at all: drops happened and survivors got
    // perturbed.
    int dropped = 0;
    for (int d : a.first)
        dropped += d;
    EXPECT_GT(dropped, 0);
    EXPECT_LT(dropped, static_cast<int>(a.first.size()));
}

TEST(FaultInjector, LoadFactorFollowsSpikes)
{
    fault::FaultPlan plan;
    plan.addSpike({0, 3.0, 6.0, 1.5});
    fault::FaultInjector inj(plan, 1, {});
    EXPECT_NEAR(inj.loadFactor(0, 2.9), 1.0, 1e-12);
    EXPECT_NEAR(inj.loadFactor(0, 3.0), 1.5, 1e-12);
    EXPECT_NEAR(inj.loadFactor(0, 5.9), 1.5, 1e-12);
    EXPECT_NEAR(inj.loadFactor(0, 6.0), 1.0, 1e-12);
    EXPECT_NEAR(inj.loadFactor(1, 4.0), 1.0, 1e-12); // other app
}

TEST(EpochSimFaults, DroppedSamplesDeliverStaleObservations)
{
    fault::FaultPlan plan;
    fault::MeasurementFault m;
    m.pDrop = 0.35;
    plan.setMeasurement(m);

    obs::MetricsRegistry metrics;
    cluster::SimulationConfig cfg;
    cfg.durationSeconds = 30.0;
    cfg.warmupEpochs = 4;
    cfg.seed = 7;
    cfg.checkMode = check::Mode::Strict;
    cfg.faults = &plan;
    cfg.obs.metrics = &metrics;

    sched::Arq arq;
    const auto res =
        cluster::EpochSimulator(canonicalNode(), cfg).run(arq);

    int stale = 0;
    for (std::size_t e = 0; e < res.epochs.size(); ++e) {
        for (std::size_t a = 0; a < res.epochs[e].obs.size();
             ++a) {
            const auto &o = res.epochs[e].obs[a];
            if (o.sampleValid)
                continue;
            ++stale;
            if (e == 0)
                continue; // epoch-0 drops deliver solo defaults
            // A dropped sample repeats the previous delivery.
            const auto &prev = res.epochs[e - 1].obs[a];
            EXPECT_EQ(o.p95Ms, prev.p95Ms);
            EXPECT_EQ(o.ipc, prev.ipc);
        }
    }
    EXPECT_GT(stale, 0);
    EXPECT_EQ(metrics.counter("fault.measurement_drop"),
              static_cast<double>(stale));
}

TEST(EpochSimFaults, AllSamplesDroppedSkipsEveryDecision)
{
    fault::FaultPlan plan;
    fault::MeasurementFault m;
    m.pDrop = 1.0;
    plan.setMeasurement(m);

    obs::MetricsRegistry metrics;
    cluster::SimulationConfig cfg;
    cfg.durationSeconds = 20.0;
    cfg.warmupEpochs = 4;
    cfg.checkMode = check::Mode::Strict;
    cfg.faults = &plan;
    cfg.obs.metrics = &metrics;

    sched::Arq arq;
    const auto res =
        cluster::EpochSimulator(canonicalNode(), cfg).run(arq);

    // With every sample dropped the control loop must hold: no
    // decision ever fires, so the layout never moves.
    EXPECT_GT(metrics.counter("fault.decision_skipped"), 0.0);
    for (const auto &rec : res.epochs)
        EXPECT_EQ(rec.regionRes, res.epochs.front().regionRes);
}

TEST(EpochSimFaults, NoopActuationFreezesLayoutUnderArq)
{
    fault::FaultPlan plan;
    fault::ActuationFault a;
    a.pFail = 1.0;
    a.mode = fault::ActuationFault::Mode::Noop;
    a.retries = 0;
    plan.setActuation(a);

    obs::MetricsRegistry metrics;
    cluster::SimulationConfig cfg;
    cfg.durationSeconds = 30.0;
    cfg.warmupEpochs = 4;
    cfg.checkMode = check::Mode::Strict;
    cfg.faults = &plan;
    cfg.obs.metrics = &metrics;

    sched::Arq arq;
    const auto res =
        cluster::EpochSimulator(canonicalNode(), cfg).run(arq);

    // Every attempted change was silently ignored, and the ARQ FSM
    // reconciled (no phantom rollbacks of never-applied moves — the
    // strict auditor would throw on arq.rollback_exact otherwise).
    EXPECT_GT(metrics.counter("fault.actuation_fail"), 0.0);
    EXPECT_GT(metrics.counter("arq.actuation_failed"), 0.0);
    for (const auto &rec : res.epochs)
        EXPECT_EQ(rec.regionRes, res.epochs.front().regionRes);
}

TEST(EpochSimFaults, PartialActuationRetriesAndReconciles)
{
    fault::FaultPlan plan;
    fault::ActuationFault a;
    a.pFail = 0.5;
    a.mode = fault::ActuationFault::Mode::Partial;
    a.retries = 2;
    a.pRetryFail = 0.5;
    plan.setActuation(a);

    obs::MetricsRegistry metrics;
    cluster::SimulationConfig cfg;
    cfg.durationSeconds = 60.0;
    cfg.warmupEpochs = 4;
    cfg.seed = 11;
    cfg.checkMode = check::Mode::Strict; // fault.reconciled armed
    cfg.faults = &plan;
    cfg.obs.metrics = &metrics;

    sched::Arq arq;
    EXPECT_NO_THROW(
        cluster::EpochSimulator(canonicalNode(), cfg).run(arq));
    // Some first writes failed and at least one retry won.
    EXPECT_GT(metrics.counter("fault.actuation_fail") +
                  metrics.counter("recovery.actuation_retry"),
              0.0);
}

TEST(EpochSimFaults, LoadSpikeRaisesTailLatency)
{
    fault::FaultPlan plan;
    plan.addSpike({0, 15.0, 45.0, 2.0});

    cluster::SimulationConfig cfg;
    cfg.durationSeconds = 60.0;
    cfg.warmupEpochs = 0;
    cfg.faults = &plan;

    // Unmanaged so nothing adapts the allocation away.
    auto sched = sched::makeScheduler("Unmanaged");
    cluster::Node node(
        machine::MachineConfig::xeonE52630v4().withAvailable(6, 12,
                                                             6),
        {cluster::lcAt(apps::xapian(), 0.45),
         cluster::be(apps::stream())});
    const auto res = cluster::EpochSimulator(node, cfg).run(*sched);

    double in_spike = 0.0, outside = 0.0;
    int n_in = 0, n_out = 0;
    for (const auto &rec : res.epochs) {
        if (rec.time >= 15.0 && rec.time < 45.0) {
            in_spike += rec.obs[0].p95Ms;
            ++n_in;
        } else if (rec.time >= 2.0) { // skip cold start
            outside += rec.obs[0].p95Ms;
            ++n_out;
        }
    }
    ASSERT_GT(n_in, 0);
    ASSERT_GT(n_out, 0);
    EXPECT_GT(in_spike / n_in, 1.2 * (outside / n_out));
}

TEST(EpochSimFaults, InactivePlanMatchesFaultsOffBitForBit)
{
    cluster::SimulationConfig base;
    base.durationSeconds = 20.0;
    base.warmupEpochs = 4;
    base.seed = 99;

    sched::Arq a1, a2;
    const auto plain =
        cluster::EpochSimulator(canonicalNode(), base).run(a1);

    const fault::FaultPlan inactive; // no directives
    cluster::SimulationConfig faulted = base;
    faulted.faults = &inactive;
    const auto gated =
        cluster::EpochSimulator(canonicalNode(), faulted).run(a2);

    ASSERT_EQ(plain.epochs.size(), gated.epochs.size());
    EXPECT_EQ(plain.meanES, gated.meanES);
    for (std::size_t e = 0; e < plain.epochs.size(); ++e) {
        for (std::size_t i = 0; i < plain.epochs[e].obs.size();
             ++i) {
            EXPECT_EQ(plain.epochs[e].obs[i].p95Ms,
                      gated.epochs[e].obs[i].p95Ms);
        }
    }
}

TEST(ChaosFuzz, AllSchedulersSurviveStrictUnderFaults)
{
    const std::vector<std::string> lc_names{
        "xapian", "moses", "img-dnn", "masstree", "sphinx", "silo"};
    const std::vector<std::string> be_names{
        "fluidanimate", "streamcluster", "stream"};

    stats::Rng rng(24681357); // fixed seed: replayable sweep
    obs::MetricsRegistry metrics;
    const auto plan = fault::FaultPlan::builtinChaos();
    const auto &strategies = sched::allStrategyNames();
    ASSERT_GE(strategies.size(), 7u);

    int scenarios = 0;
    for (int trial = 0; trial < 16; ++trial) {
        const int n_lc = 1 + static_cast<int>(rng.uniformInt(3));
        const int n_be = static_cast<int>(rng.uniformInt(3));

        std::vector<cluster::ColocatedApp> colocated;
        for (int i = 0; i < n_lc; ++i) {
            colocated.push_back(cluster::lcAt(
                apps::byName(lc_names[rng.uniformInt(
                    lc_names.size())]),
                rng.uniform(0.05, 0.95)));
        }
        for (int i = 0; i < n_be; ++i) {
            colocated.push_back(cluster::be(apps::byName(
                be_names[rng.uniformInt(be_names.size())])));
        }

        const int apps_total = n_lc + n_be;
        const int cores = std::max(
            apps_total + 1,
            4 + static_cast<int>(rng.uniformInt(7)));
        const int ways = std::max(
            apps_total + 1,
            8 + static_cast<int>(rng.uniformInt(13)));
        const int bw = 4 + static_cast<int>(rng.uniformInt(7));
        cluster::Node node(
            machine::MachineConfig::xeonE52630v4().withAvailable(
                cores, ways, bw),
            colocated);

        cluster::SimulationConfig cfg;
        cfg.durationSeconds = 10.0;
        cfg.warmupEpochs = 4;
        cfg.seed = rng.uniformInt(1u << 30);
        cfg.checkMode = check::Mode::Strict;
        cfg.faults = &plan;
        cfg.obs.metrics = &metrics;

        for (const auto &name : strategies) {
            auto sched = sched::makeScheduler(name);
            cluster::EpochSimulator sim(node, cfg);
            try {
                sim.run(*sched);
            } catch (const check::InvariantViolation &e) {
                FAIL() << name << " violated "
                       << e.violation().check << " in trial "
                       << trial << " (epoch "
                       << e.violation().epoch << "): " << e.what();
            }
            ++scenarios;
        }
    }

    EXPECT_GE(scenarios, 112);
    EXPECT_EQ(metrics.counter("check.violations"), 0.0);
    // The plan actually bit: faults fired across the sweep.
    EXPECT_GT(metrics.counter("fault.measurement_drop"), 0.0);
    EXPECT_GT(metrics.counter("fault.actuation_fail"), 0.0);
}

TEST(ChaosFuzz, FaultedTracesByteIdenticalAtAnyThreadCount)
{
    const auto plan = fault::FaultPlan::builtinChaos();
    cluster::SimulationConfig cfg;
    cfg.durationSeconds = 10.0;
    cfg.warmupEpochs = 4;
    cfg.seed = 5;
    cfg.checkMode = check::Mode::Strict;
    cfg.faults = &plan;

    std::vector<exec::ScenarioJob> jobs;
    for (const auto &name : sched::allStrategyNames())
        jobs.push_back({name, canonicalNode(), cfg, name});

    auto run_with = [&](int threads) {
        exec::ThreadPool pool(threads);
        exec::ScenarioRunner runner(&pool);
        obs::BufferTraceSink sink;
        obs::Scope scope;
        scope.sink = &sink;
        runner.setObsScope(scope);
        const auto results = runner.run(jobs);
        return std::make_pair(sink.str(), results);
    };

    const auto serial = run_with(1);
    const auto wide = run_with(4);
    ASSERT_FALSE(serial.first.empty());
    EXPECT_EQ(serial.first, wide.first);
    ASSERT_EQ(serial.second.size(), wide.second.size());
    for (std::size_t i = 0; i < serial.second.size(); ++i)
        EXPECT_EQ(serial.second[i].meanES, wide.second[i].meanES);
    // The faulted trace carries schema-v1 fault events.
    EXPECT_NE(serial.first.find("\"type\":\"fault\""),
              std::string::npos);
}

TEST(ChaosFuzz, SampledFaultedTracesByteIdenticalAtAnyThreadCount)
{
    // The head-based sampler composes with fault injection: a
    // sampled chaos trace (epochs kept by the seeded per-epoch
    // draw, everything else muted) must still come out
    // byte-identical at any thread count, and must be a strict
    // subset of the unsampled run.
    const auto plan = fault::FaultPlan::builtinChaos();
    cluster::SimulationConfig cfg;
    cfg.durationSeconds = 10.0;
    cfg.warmupEpochs = 4;
    cfg.seed = 5;
    cfg.checkMode = check::Mode::Strict;
    cfg.faults = &plan;

    auto run_with = [&](int threads, double rate) {
        cluster::SimulationConfig c = cfg;
        c.traceSampleRate = rate;
        std::vector<exec::ScenarioJob> jobs;
        for (const auto &name : sched::allStrategyNames())
            jobs.push_back({name, canonicalNode(), c, name});
        exec::ThreadPool pool(threads);
        exec::ScenarioRunner runner(&pool);
        obs::BufferTraceSink sink;
        obs::Scope scope;
        scope.sink = &sink;
        runner.setObsScope(scope);
        runner.run(jobs);
        return sink.str();
    };

    const std::string serial = run_with(1, 0.3);
    const std::string wide = run_with(4, 0.3);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, wide);

    auto count_of = [](const std::string &trace,
                       const std::string &type) {
        const std::string needle = "\"type\":\"" + type + "\"";
        std::size_t n = 0;
        for (auto pos = trace.find(needle);
             pos != std::string::npos;
             pos = trace.find(needle, pos + needle.size()))
            ++n;
        return n;
    };
    const std::string full = run_with(1, 1.0);
    EXPECT_GT(count_of(serial, "epoch"), 0u);
    EXPECT_LT(count_of(serial, "epoch"),
              count_of(full, "epoch"));
    // Fault events ride the same per-epoch gate.
    EXPECT_LE(count_of(serial, "fault"),
              count_of(full, "fault"));
    // Every kept line also appears in the full trace: sampling
    // only mutes, it never rewrites (run_start's trace_sample
    // field is the single intended difference).
    std::istringstream kept(serial);
    std::string line;
    while (std::getline(kept, line)) {
        if (line.find("\"type\":\"run_start\"") !=
            std::string::npos)
            continue;
        EXPECT_NE(full.find(line), std::string::npos)
            << "sampled-only line: " << line;
    }
}

TEST(FleetFaults, NodeCrashFailsOverToSurvivors)
{
    fault::FaultPlan plan;
    plan.addCrash({1, 10.0});

    auto build = [] {
        cluster::Fleet fleet;
        fleet.addNode(
            cluster::Node(machine::MachineConfig::xeonE52630v4(),
                          {cluster::lcAt(apps::xapian(), 0.3),
                           cluster::be(apps::fluidanimate())}),
            std::make_unique<sched::Arq>());
        fleet.addNode(
            cluster::Node(machine::MachineConfig::xeonE52630v4(),
                          {cluster::lcAt(apps::moses(), 0.3),
                           cluster::be(apps::stream())}),
            std::make_unique<sched::Arq>());
        return fleet;
    };

    cluster::SimulationConfig cfg;
    cfg.durationSeconds = 30.0;
    cfg.warmupEpochs = 5;
    cfg.faults = &plan;

    auto f1 = build();
    const auto res = f1.run(cfg);
    ASSERT_EQ(res.nodes.size(), 2u);
    EXPECT_EQ(res.crashedNodes, std::vector<int>{1});
    EXPECT_EQ(res.failovers, 2); // both of node 1's apps re-placed
    // The crashed node only has its pre-crash epochs.
    EXPECT_EQ(res.nodes[1].epochs.size(), 20u);
    EXPECT_GT(res.nodes[0].epochs.size(),
              res.nodes[1].epochs.size());
    EXPECT_GE(res.eS, 0.0);
    EXPECT_LE(res.eS, 1.0);

    // Crash handling is deterministic.
    auto f2 = build();
    const auto res2 = f2.run(cfg);
    EXPECT_EQ(res.eS, res2.eS);
    EXPECT_EQ(res.failovers, res2.failovers);
}

TEST(FleetFaults, NoCrashPlanLeavesFleetPathUntouched)
{
    fault::FaultPlan plan;
    fault::MeasurementFault m;
    m.pDrop = 0.1;
    plan.setMeasurement(m);

    cluster::Fleet fleet;
    fleet.addNode(
        cluster::Node(machine::MachineConfig::xeonE52630v4(),
                      {cluster::lcAt(apps::xapian(), 0.3),
                       cluster::be(apps::stream())}),
        std::make_unique<sched::Arq>());

    cluster::SimulationConfig cfg;
    cfg.durationSeconds = 20.0;
    cfg.warmupEpochs = 5;
    cfg.faults = &plan;

    const auto res = fleet.run(cfg);
    ASSERT_EQ(res.nodes.size(), 1u);
    EXPECT_EQ(res.failovers, 0);
    EXPECT_TRUE(res.crashedNodes.empty());
}

} // namespace

/**
 * @file
 * Reproducibility: identical configurations and seeds must yield
 * bit-identical simulations; different seeds only perturb noise.
 */

#include <gtest/gtest.h>

#include "apps/catalog.hh"
#include "cluster/epoch_sim.hh"
#include "sched/arq.hh"
#include "sched/clite.hh"
#include "sched/parties.hh"

namespace
{

using namespace ahq;
using namespace ahq::cluster;

Node
node()
{
    return Node(machine::MachineConfig::xeonE52630v4(),
                {lcAt(apps::xapian(), 0.5),
                 lcAt(apps::moses(), 0.2), be(apps::stream())});
}

SimulationConfig
cfg(std::uint64_t seed)
{
    SimulationConfig c;
    c.durationSeconds = 40.0;
    c.warmupEpochs = 40;
    c.seed = seed;
    return c;
}

template <typename Sched>
void
expectIdenticalRuns()
{
    Sched s1, s2;
    const auto r1 = EpochSimulator(node(), cfg(7)).run(s1);
    const auto r2 = EpochSimulator(node(), cfg(7)).run(s2);
    ASSERT_EQ(r1.epochs.size(), r2.epochs.size());
    for (std::size_t e = 0; e < r1.epochs.size(); ++e) {
        const auto &a = r1.epochs[e];
        const auto &b = r2.epochs[e];
        for (std::size_t i = 0; i < a.obs.size(); ++i) {
            EXPECT_DOUBLE_EQ(a.obs[i].p95Ms, b.obs[i].p95Ms);
            EXPECT_DOUBLE_EQ(a.obs[i].ipc, b.obs[i].ipc);
        }
        EXPECT_DOUBLE_EQ(a.entropy.eS, b.entropy.eS);
        ASSERT_EQ(a.regionRes.size(), b.regionRes.size());
        for (std::size_t r = 0; r < a.regionRes.size(); ++r)
            EXPECT_EQ(a.regionRes[r], b.regionRes[r]);
    }
    EXPECT_DOUBLE_EQ(r1.meanES, r2.meanES);
}

TEST(Determinism, ArqBitIdentical)
{
    expectIdenticalRuns<sched::Arq>();
}

TEST(Determinism, PartiesBitIdentical)
{
    expectIdenticalRuns<sched::Parties>();
}

TEST(Determinism, CliteBitIdentical)
{
    expectIdenticalRuns<sched::Clite>();
}

TEST(Determinism, ReusedSchedulerInstanceIsReset)
{
    // Running the same scheduler object twice must give the same
    // result as two fresh instances (run() calls reset()).
    sched::Arq s;
    const auto r1 = EpochSimulator(node(), cfg(7)).run(s);
    const auto r2 = EpochSimulator(node(), cfg(7)).run(s);
    EXPECT_DOUBLE_EQ(r1.meanES, r2.meanES);
    EXPECT_EQ(r1.violations, r2.violations);
}

TEST(Determinism, DifferentSeedsPerturbOnlyNoise)
{
    sched::Parties s;
    const auto r1 = EpochSimulator(node(), cfg(1)).run(s);
    const auto r2 = EpochSimulator(node(), cfg(2)).run(s);
    // Different noise draws...
    EXPECT_NE(r1.epochs[5].obs[0].p95Ms, r2.epochs[5].obs[0].p95Ms);
    // ...but statistically equivalent behaviour.
    EXPECT_NEAR(r1.meanES, r2.meanES, 0.1);
}

} // namespace

/**
 * @file
 * Full-system validation of the three required properties of E_S
 * (Section II-A) on the node simulator, mirroring Section III.
 */

#include <gtest/gtest.h>

#include "apps/catalog.hh"
#include "cluster/epoch_sim.hh"
#include "core/equivalence.hh"
#include "sched/arq.hh"
#include "sched/unmanaged.hh"

namespace
{

using namespace ahq;
using namespace ahq::cluster;

/** The Section III-A colocation: 3 LC @ 20% + Fluidanimate. */
Node
tableIiNode(int cores, int ways = 20)
{
    return Node(machine::MachineConfig::xeonE52630v4()
                    .withAvailable(cores, ways, 10),
                {lcAt(apps::xapian(), 0.2),
                 lcAt(apps::moses(), 0.2),
                 lcAt(apps::imgDnn(), 0.2),
                 be(apps::fluidanimate())});
}

SimulationConfig
cfg()
{
    SimulationConfig c;
    c.durationSeconds = 60.0;
    c.warmupEpochs = 60;
    return c;
}

double
runEs(sched::Scheduler &s, int cores, int ways = 20)
{
    EpochSimulator sim(tableIiNode(cores, ways), cfg());
    return sim.run(s).meanES;
}

TEST(Property1, EntropyDimensionlessInUnitRange)
{
    sched::Unmanaged s;
    for (int cores : {4, 6, 8, 10}) {
        const double es = runEs(s, cores);
        EXPECT_GE(es, 0.0);
        EXPECT_LE(es, 1.0);
    }
}

TEST(Property2, EntropyFallsWithMoreCores)
{
    // Resource amount sensitiveness (Table II / Fig. 2): adding
    // cores must not increase E_S (monotone trend, small tolerance
    // for measurement noise).
    sched::Unmanaged s;
    double prev = 2.0;
    for (int cores : {4, 5, 6, 7, 8, 10}) {
        const double es = runEs(s, cores);
        EXPECT_LE(es, prev + 0.03) << cores << " cores";
        prev = es;
    }
    // And the span is substantial: scarcity really hurts.
    EXPECT_GT(runEs(s, 4) - runEs(s, 10), 0.15);
}

TEST(Property2, EntropyFallsWithMoreWays)
{
    sched::Unmanaged u;
    const double few = runEs(u, 8, 4);
    const double many = runEs(u, 8, 20);
    EXPECT_LE(many, few + 0.02);
}

TEST(Property2, HoldsForArqToo)
{
    sched::Arq s;
    double prev = 2.0;
    for (int cores : {5, 6, 8, 10}) {
        const double es = runEs(s, cores);
        EXPECT_LE(es, prev + 0.03) << cores << " cores";
        prev = es;
    }
}

TEST(Property3, SchedulingStrategySensitiveness)
{
    // With scarce resources and a fixed colocation, a smarter
    // strategy (ARQ) must achieve lower E_S than Unmanaged.
    sched::Unmanaged u;
    sched::Arq a;
    const double es_u = runEs(u, 6);
    const double es_a = runEs(a, 6);
    EXPECT_LT(es_a, es_u);
}

TEST(TableII, UnmanagedEntropyRanksAcrossCoreCounts)
{
    // The Table II storyline: 6 cores -> high E_LC, 8 cores -> E_LC
    // essentially zero.
    sched::Unmanaged s;
    EpochSimulator sim6(tableIiNode(6), cfg());
    EpochSimulator sim8(tableIiNode(8), cfg());
    const auto r6 = sim6.run(s);
    const auto r8 = sim8.run(s);
    EXPECT_GT(r6.meanELc, 0.25);
    // At 8 cores the paper's Xapian sits right at its threshold
    // (4.18 ms vs 4.22 ms), so a small residual E_LC remains.
    EXPECT_LT(r8.meanELc, 0.15);
    EXPECT_GT(r6.meanES, r8.meanES + 0.1);
}

TEST(ResourceEquivalence, ArqSavesCoresOverUnmanaged)
{
    // Fig. 3(a): to reach the same E_S, Unmanaged needs more cores
    // than ARQ; the gap is the resource equivalence.
    sched::Unmanaged u;
    sched::Arq a;
    core::EntropyCurve cu, ca;
    for (int cores : {4, 5, 6, 7, 8, 9, 10}) {
        cu.push_back({static_cast<double>(cores), runEs(u, cores)});
        ca.push_back({static_cast<double>(cores), runEs(a, cores)});
    }
    const auto dr = core::resourceEquivalence(cu, ca, 0.25);
    ASSERT_TRUE(dr.has_value());
    EXPECT_GT(*dr, 0.5); // ARQ saves at least half a core
}

TEST(Yield, ZeroLcEntropyImpliesFullYield)
{
    // "When E_LC = 0, the yield is 100%" (Section I).
    sched::Arq s;
    EpochSimulator sim(tableIiNode(10), cfg());
    const auto r = sim.run(s);
    if (r.meanELc < 1e-6) {
        EXPECT_EQ(r.yieldValue, 1.0);
    }
}

} // namespace

/**
 * @file
 * Integration tests of the Fig. 13 fluctuating-load dynamics: the
 * qualitative behaviours Section VI-B describes must emerge from
 * the full stack.
 */

#include <gtest/gtest.h>

#include "apps/catalog.hh"
#include "cluster/epoch_sim.hh"
#include "sched/arq.hh"
#include "sched/lc_first.hh"
#include "sched/parties.hh"
#include "trace/load_trace.hh"

namespace
{

using namespace ahq;
using namespace ahq::cluster;

Node
fig13Node()
{
    return Node(machine::MachineConfig::xeonE52630v4(),
                {lcWith(apps::xapian(),
                        std::shared_ptr<trace::LoadTrace>(
                            trace::fig13XapianTrace())),
                 lcAt(apps::moses(), 0.2),
                 lcAt(apps::imgDnn(), 0.2), be(apps::stream())});
}

SimulationConfig
fig13Config()
{
    SimulationConfig c;
    c.durationSeconds = 250.0;
    c.warmupEpochs = 0;
    return c;
}

/** Mean over epochs in [t0, t1) of a per-epoch projection. */
template <typename Fn>
double
phaseMean(const SimulationResult &res, double t0, double t1, Fn fn)
{
    double sum = 0.0;
    int n = 0;
    for (const auto &rec : res.epochs) {
        if (rec.time >= t0 && rec.time < t1) {
            sum += fn(rec);
            ++n;
        }
    }
    return n > 0 ? sum / n : 0.0;
}

TEST(Fig13Dynamics, ArqSharedRegionTracksLoad)
{
    sched::Arq arq;
    EpochSimulator sim(fig13Node(), fig13Config());
    const auto res = sim.run(arq);

    auto shared_cores = [](const EpochRecord &rec) {
        return static_cast<double>(
            rec.layout.region(rec.layout.sharedRegion()).res.cores);
    };
    // Low-load head (0-20 s, Xapian 10%) vs the 90% phase
    // (120-140 s): the shared region must shrink under pressure...
    const double head = phaseMean(res, 5.0, 20.0, shared_cores);
    const double peak = phaseMean(res, 125.0, 140.0, shared_cores);
    EXPECT_LT(peak, head - 1.0);
    // ...and recover afterwards (220-250 s back at 10%).
    const double tail = phaseMean(res, 230.0, 250.0, shared_cores);
    EXPECT_GT(tail, peak);
}

TEST(Fig13Dynamics, ArqBeatsPartiesAndLcFirstOnMeanEntropy)
{
    sched::Arq arq;
    sched::Parties parties;
    sched::LcFirst lc_first;
    EpochSimulator sim(fig13Node(), fig13Config());
    const auto ra = sim.run(arq);
    const auto rp = sim.run(parties);
    const auto rl = sim.run(lc_first);

    auto mean_es = [](const SimulationResult &r) {
        double s = 0.0;
        for (const auto &rec : r.epochs)
            s += rec.entropy.eS;
        return s / static_cast<double>(r.epochs.size());
    };
    EXPECT_LT(mean_es(ra), mean_es(rp));
    EXPECT_LT(mean_es(ra), mean_es(rl));
}

TEST(Fig13Dynamics, EntropyRisesWithinHighLoadPhases)
{
    sched::LcFirst s; // static strategy isolates the load effect
    EpochSimulator sim(fig13Node(), fig13Config());
    const auto res = sim.run(s);
    auto es = [](const EpochRecord &rec) { return rec.entropy.eS; };
    const double low = phaseMean(res, 5.0, 20.0, es);
    const double high = phaseMean(res, 125.0, 140.0, es);
    EXPECT_GT(high, low);
}

TEST(Fig13Dynamics, BeThroughputRecoversAfterPeak)
{
    sched::Arq arq;
    EpochSimulator sim(fig13Node(), fig13Config());
    const auto res = sim.run(arq);
    auto ipc = [](const EpochRecord &rec) {
        return rec.obs[3].ipc;
    };
    const double peak = phaseMean(res, 125.0, 140.0, ipc);
    const double tail = phaseMean(res, 230.0, 250.0, ipc);
    EXPECT_GT(tail, peak);
}

} // namespace

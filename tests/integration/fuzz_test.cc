/**
 * @file
 * Property/fuzz tests: the allocation invariants must survive
 * arbitrary (randomised but seeded) inputs — random move sequences
 * on layouts, and controllers fed random observation streams.
 */

#include <gtest/gtest.h>

#include "machine/config.hh"
#include "machine/layout.hh"
#include "sched/arq.hh"
#include "sched/clite.hh"
#include "sched/parties.hh"
#include "stats/rng.hh"

namespace
{

using namespace ahq;
using machine::RegionLayout;
using machine::ResourceKind;
using sched::AppObservation;

TEST(LayoutFuzz, RandomMoveSequencesPreserveInvariants)
{
    stats::Rng rng(12345);
    for (int trial = 0; trial < 50; ++trial) {
        auto layout = RegionLayout::arqInitial(
            {10, 20, 10}, {0, 1, 2}, {3});
        const auto total_before = layout.allocated();

        for (int step = 0; step < 400; ++step) {
            const auto from = static_cast<machine::RegionId>(
                rng.uniformInt(static_cast<std::uint64_t>(
                    layout.numRegions())));
            const auto to = static_cast<machine::RegionId>(
                rng.uniformInt(static_cast<std::uint64_t>(
                    layout.numRegions())));
            const auto kind = machine::kAllResourceKinds[
                rng.uniformInt(machine::kNumResourceKinds)];
            layout.moveResource(kind, from, to);

            ASSERT_TRUE(layout.valid());
            ASSERT_EQ(layout.allocated(), total_before);
            for (machine::AppId app : layout.allApps()) {
                ASSERT_GE(layout.reachable(app,
                                           ResourceKind::Cores), 1);
                ASSERT_GE(layout.reachable(
                              app, ResourceKind::LlcWays), 1);
            }
        }
    }
}

/** Random-but-plausible observations for one epoch. */
std::vector<AppObservation>
randomObs(stats::Rng &rng, int n_lc, int n_be)
{
    std::vector<AppObservation> obs;
    for (int i = 0; i < n_lc + n_be; ++i) {
        AppObservation o;
        o.id = i;
        o.latencyCritical = i < n_lc;
        o.threads = 4;
        if (o.latencyCritical) {
            o.thresholdMs = rng.uniform(1.0, 20.0);
            o.idealP95Ms = rng.uniform(0.1, o.thresholdMs);
            o.p95Ms = o.idealP95Ms * rng.uniform(0.8, 30.0);
            o.loadFraction = rng.uniform(0.05, 0.95);
            o.arrivalRate = o.loadFraction * 2000.0;
        } else {
            o.ipcSolo = rng.uniform(0.5, 3.0);
            o.ipc = o.ipcSolo * rng.uniform(0.01, 1.1);
        }
        obs.push_back(o);
    }
    return obs;
}

template <typename SchedT>
void
fuzzScheduler(std::uint64_t seed, int epochs)
{
    stats::Rng rng(seed);
    const auto cfg = machine::MachineConfig::xeonE52630v4();
    SchedT sched;
    auto static_obs = randomObs(rng, 3, 1);
    auto layout = sched.initialLayout(cfg, static_obs);
    const auto total = layout.allocated();

    for (int e = 0; e < epochs; ++e) {
        const auto obs = randomObs(rng, 3, 1);
        sched.adjust(layout, obs, 0.5 * e);
        ASSERT_TRUE(layout.valid()) << "epoch " << e;
        ASSERT_TRUE(
            layout.allocated().fitsWithin(cfg.availableResources()))
            << "epoch " << e;
        // Strict controllers never leak resources either.
        ASSERT_EQ(layout.allocated(), total) << "epoch " << e;
    }
}

TEST(SchedulerFuzz, ArqSurvivesRandomObservations)
{
    fuzzScheduler<sched::Arq>(1, 500);
    fuzzScheduler<sched::Arq>(2, 500);
}

TEST(SchedulerFuzz, PartiesSurvivesRandomObservations)
{
    fuzzScheduler<sched::Parties>(3, 500);
    fuzzScheduler<sched::Parties>(4, 500);
}

TEST(SchedulerFuzz, CliteSurvivesRandomObservations)
{
    fuzzScheduler<sched::Clite>(5, 300);
    fuzzScheduler<sched::Clite>(6, 300);
}

TEST(SchedulerFuzz, ArqWithAblationsSurvives)
{
    stats::Rng rng(7);
    for (const bool rollback : {true, false}) {
        for (const bool shared : {true, false}) {
            sched::ArqConfig c;
            c.rollbackEnabled = rollback;
            c.sharedRegionEnabled = shared;
            c.settleEpochs = 0;
            sched::Arq sched(c);
            const auto cfg = machine::MachineConfig::xeonE52630v4();
            auto layout = sched.initialLayout(cfg,
                                              randomObs(rng, 2, 2));
            for (int e = 0; e < 200; ++e) {
                sched.adjust(layout, randomObs(rng, 2, 2),
                             0.5 * e);
                ASSERT_TRUE(layout.valid());
            }
        }
    }
}

} // namespace

/**
 * @file
 * Full-system comparisons between the five strategies, asserting the
 * qualitative orderings the paper's Section VI establishes.
 */

#include <gtest/gtest.h>

#include "apps/catalog.hh"
#include "cluster/epoch_sim.hh"
#include "sched/arq.hh"
#include "sched/clite.hh"
#include "sched/heracles.hh"
#include "sched/lc_first.hh"
#include "sched/parties.hh"
#include "sched/unmanaged.hh"

namespace
{

using namespace ahq;
using namespace ahq::cluster;

Node
colocation(double xapian_load, const apps::AppProfile &be_app)
{
    return Node(machine::MachineConfig::xeonE52630v4(),
                {lcAt(apps::xapian(), xapian_load),
                 lcAt(apps::moses(), 0.2),
                 lcAt(apps::imgDnn(), 0.2), be(be_app)});
}

SimulationConfig
cfg()
{
    SimulationConfig c;
    c.durationSeconds = 120.0; // room for CLITE's sampling budget
    c.warmupEpochs = 120;
    return c;
}

SimulationResult
run(sched::Scheduler &s, double xapian_load,
    const apps::AppProfile &be_app)
{
    EpochSimulator sim(colocation(xapian_load, be_app), cfg());
    return sim.run(s);
}

TEST(Fig8, LowLoadSharingBeatsIsolation)
{
    // "When the load of the LC applications is low, the Unmanaged
    // strategy achieves the lowest E_S among all the strategies,
    // showing the benefits of resource sharing."
    sched::Unmanaged u;
    sched::Parties p;
    sched::Clite c;
    const auto ru = run(u, 0.1, apps::fluidanimate());
    const auto rp = run(p, 0.1, apps::fluidanimate());
    const auto rc = run(c, 0.1, apps::fluidanimate());
    EXPECT_LT(ru.meanES, rp.meanES);
    EXPECT_LT(ru.meanES, rc.meanES);
}

TEST(Fig8, HighLoadUnmanagedCollapses)
{
    sched::Unmanaged u;
    sched::Arq a;
    const auto ru = run(u, 0.9, apps::fluidanimate());
    const auto ra = run(a, 0.9, apps::fluidanimate());
    EXPECT_GT(ru.meanELc, ra.meanELc + 0.1);
    EXPECT_GT(ru.meanES, ra.meanES + 0.1);
}

TEST(Fig8, ArqLowestSystemEntropyAcrossLoads)
{
    sched::Arq a;
    sched::Parties p;
    sched::Clite c;
    for (double load : {0.1, 0.5, 0.9}) {
        const auto ra = run(a, load, apps::fluidanimate());
        const auto rp = run(p, load, apps::fluidanimate());
        const auto rc = run(c, load, apps::fluidanimate());
        EXPECT_LE(ra.meanES, rp.meanES + 0.02) << "load " << load;
        EXPECT_LE(ra.meanES, rc.meanES + 0.02) << "load " << load;
    }
}

TEST(Fig8, IsolationCrushesBeAtAnyLoad)
{
    // PARTIES' strict partitions leave the BE app with scraps, even
    // at low load: the core motivation for ARQ's shared region.
    sched::Parties p;
    sched::Arq a;
    const auto rp = run(p, 0.1, apps::fluidanimate());
    const auto ra = run(a, 0.1, apps::fluidanimate());
    EXPECT_GT(ra.meanIpc[3], rp.meanIpc[3] * 1.3);
    EXPECT_LT(ra.meanEBe, rp.meanEBe);
}

TEST(Fig9, StreamBreaksUnmanagedEvenAtLowLoad)
{
    // "Neither the Unmanaged nor the LC-first strategy can satisfy
    // the QoS of the LC applications even if the load is low" — the
    // Unmanaged half, which is the stronger statement in our model.
    sched::Unmanaged u;
    const auto ru = run(u, 0.1, apps::stream());
    EXPECT_LT(ru.yieldValue, 1.0);
    EXPECT_GT(ru.meanELc, 0.05);
}

TEST(Fig9, ManagedStrategiesSurviveStream)
{
    sched::Parties p;
    sched::Arq a;
    const auto rp = run(p, 0.5, apps::stream());
    const auto ra = run(a, 0.5, apps::stream());
    // Both keep most of the colocation satisfied (Xapian may ride
    // its elastic threshold), with low intolerable interference...
    EXPECT_GE(rp.yieldValue, 2.0 / 3.0);
    EXPECT_GE(ra.yieldValue, 2.0 / 3.0);
    EXPECT_LT(rp.meanELc, 0.05);
    EXPECT_LT(ra.meanELc, 0.05);
    // ...and ARQ gets there with a far healthier BE app.
    EXPECT_GT(ra.meanIpc[3], rp.meanIpc[3]);
}

TEST(Fig9, ArqBestAtHighLoadWithStream)
{
    sched::Arq a;
    sched::Parties p;
    sched::Clite c;
    sched::Unmanaged u;
    const auto ra = run(a, 0.9, apps::stream());
    const auto rp = run(p, 0.9, apps::stream());
    const auto rc = run(c, 0.9, apps::stream());
    const auto ru = run(u, 0.9, apps::stream());
    EXPECT_LT(ra.meanES, rp.meanES + 0.03);
    EXPECT_LT(ra.meanES, rc.meanES + 0.03);
    EXPECT_LT(ra.meanES, ru.meanES);
}

TEST(LcFirst, ProtectsLatencyButTaxesBe)
{
    sched::LcFirst lf;
    sched::Unmanaged u;
    const auto rl = run(lf, 0.5, apps::stream());
    const auto ru = run(u, 0.5, apps::stream());
    EXPECT_LT(rl.meanELc, ru.meanELc);
    // The BE app pays for the priority.
    EXPECT_LE(rl.meanIpc[3], ru.meanIpc[3] * 1.4);
}


TEST(Heracles, LandsBetweenUnmanagedAndArqWithStream)
{
    // The threshold-based precursor: better than no management,
    // not as good as ARQ (it cannot isolate individual LC apps).
    sched::Heracles h;
    sched::Unmanaged u;
    sched::Arq a;
    EpochSimulator sim(colocation(0.5, apps::stream()), cfg());
    const auto rh = sim.run(h);
    const auto ru = sim.run(u);
    const auto ra = sim.run(a);
    EXPECT_LT(rh.meanES, ru.meanES);
    EXPECT_LE(ra.meanES, rh.meanES + 0.05);
    EXPECT_GE(rh.yieldValue, 2.0 / 3.0);
}

TEST(Scalability, EightAppColocationRuns)
{
    // The Fig. 12 configuration: 6 LC + 2 BE apps at 20% load.
    Node node(machine::MachineConfig::xeonE52630v4(),
              {lcAt(apps::moses(), 0.2), lcAt(apps::xapian(), 0.2),
               lcAt(apps::imgDnn(), 0.2), lcAt(apps::sphinx(), 0.2),
               lcAt(apps::masstree(), 0.2), lcAt(apps::silo(), 0.2),
               be(apps::fluidanimate()),
               be(apps::streamcluster())});
    SimulationConfig c = cfg();
    sched::Arq a;
    sched::Parties p;
    const auto ra = EpochSimulator(node, c).run(a);
    const auto rp = EpochSimulator(node, c).run(p);
    EXPECT_LE(ra.meanES, rp.meanES + 0.02);
    EXPECT_GE(ra.yieldValue, rp.yieldValue - 1e-9);
}

} // namespace

/**
 * @file
 * Tests for MachineConfig.
 */

#include <gtest/gtest.h>

#include "machine/config.hh"

namespace
{

using ahq::machine::MachineConfig;
using ahq::machine::ResourceVector;

TEST(MachineConfig, PaperTestbedMatchesTableIII)
{
    const MachineConfig c = MachineConfig::xeonE52630v4();
    EXPECT_EQ(c.totalCores, 10);
    EXPECT_EQ(c.totalLlcWays, 20);
    EXPECT_DOUBLE_EQ(c.llcSizeMib, 25.0);
    EXPECT_TRUE(c.valid());
    // 25 MiB over 20 ways -> 1.25 MiB per way.
    EXPECT_NEAR(c.mibPerWay(), 1.25, 1e-12);
    EXPECT_GT(c.gibpsPerBwUnit(), 0.0);
}

TEST(MachineConfig, AvailableDefaultsToTotal)
{
    const MachineConfig c = MachineConfig::xeonE52630v4();
    EXPECT_EQ(c.availableResources(),
              (ResourceVector{10, 20, 10}));
}

TEST(MachineConfig, WithAvailableRestricts)
{
    const MachineConfig c =
        MachineConfig::xeonE52630v4().withAvailable(6, 12, 5);
    EXPECT_EQ(c.availableResources(), (ResourceVector{6, 12, 5}));
    EXPECT_EQ(c.totalCores, 10);
    EXPECT_TRUE(c.valid());
}

TEST(MachineConfig, InvalidConfigsDetected)
{
    MachineConfig c = MachineConfig::xeonE52630v4();
    c.availableCores = 11; // more than physical
    EXPECT_FALSE(c.valid());
    c = MachineConfig::xeonE52630v4();
    c.availableCores = 0;
    EXPECT_FALSE(c.valid());
    c = MachineConfig::xeonE52630v4();
    c.llcSizeMib = -1.0;
    EXPECT_FALSE(c.valid());
}

} // namespace

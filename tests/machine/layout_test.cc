/**
 * @file
 * Tests for RegionLayout: invariants, moves and factories.
 */

#include <gtest/gtest.h>

#include "machine/layout.hh"

namespace
{

using namespace ahq::machine;

RegionLayout
makeArq()
{
    return RegionLayout::arqInitial({10, 20, 10}, {0, 1, 2}, {3});
}

TEST(RegionLayout, FullySharedFactory)
{
    auto l = RegionLayout::fullyShared({10, 20, 10}, {0, 1, 2, 3});
    EXPECT_EQ(l.numRegions(), 1);
    EXPECT_TRUE(l.region(0).shared);
    EXPECT_EQ(l.region(0).res, (ResourceVector{10, 20, 10}));
    EXPECT_EQ(l.sharedRegion(), 0);
    EXPECT_TRUE(l.valid());
    EXPECT_TRUE(l.unallocated().empty());
    EXPECT_EQ(l.allApps(), (std::vector<AppId>{0, 1, 2, 3}));
}

TEST(RegionLayout, EvenlyIsolatedFactory)
{
    auto l = RegionLayout::evenlyIsolated({10, 20, 10}, {0, 1, 2});
    EXPECT_EQ(l.numRegions(), 3);
    EXPECT_TRUE(l.valid());
    // 10 cores over 3 apps -> 4, 3, 3.
    EXPECT_EQ(l.region(0).res.cores, 4);
    EXPECT_EQ(l.region(1).res.cores, 3);
    EXPECT_EQ(l.region(2).res.cores, 3);
    EXPECT_EQ(l.allocated(), (ResourceVector{10, 20, 10}));
    EXPECT_EQ(l.sharedRegion(), kNoRegion);
    EXPECT_EQ(l.isolatedRegionOf(1), 1);
}

TEST(RegionLayout, ArqInitialFactory)
{
    auto l = makeArq();
    EXPECT_EQ(l.numRegions(), 4); // shared + 3 iso
    EXPECT_EQ(l.sharedRegion(), 0);
    EXPECT_EQ(l.region(0).res, (ResourceVector{10, 20, 10}));
    for (AppId a : {0, 1, 2}) {
        const RegionId iso = l.isolatedRegionOf(a);
        ASSERT_NE(iso, kNoRegion);
        EXPECT_TRUE(l.region(iso).res.empty());
    }
    // BE app has no isolated region but reaches the shared one.
    EXPECT_EQ(l.isolatedRegionOf(3), kNoRegion);
    EXPECT_EQ(l.reachable(3, ResourceKind::Cores), 10);
    EXPECT_TRUE(l.valid());
}

TEST(RegionLayout, RegionsOfIncludesSharedAndIso)
{
    auto l = makeArq();
    const auto regions = l.regionsOf(0);
    EXPECT_EQ(regions.size(), 2u); // shared + own iso
    EXPECT_EQ(l.regionsOf(3).size(), 1u);
}

TEST(RegionLayout, MoveResourceHappyPath)
{
    auto l = makeArq();
    const RegionId iso = l.isolatedRegionOf(0);
    EXPECT_TRUE(l.moveResource(ResourceKind::Cores, 0, iso));
    EXPECT_EQ(l.region(iso).res.cores, 1);
    EXPECT_EQ(l.region(0).res.cores, 9);
    EXPECT_TRUE(l.valid());
    // Total reachable for app 0 is unchanged.
    EXPECT_EQ(l.reachable(0, ResourceKind::Cores), 10);
}

TEST(RegionLayout, MoveRefusesWhenSourceLacksUnits)
{
    auto l = makeArq();
    const RegionId iso = l.isolatedRegionOf(0);
    EXPECT_FALSE(l.moveResource(ResourceKind::Cores, iso, 0));
}

TEST(RegionLayout, MoveRefusesStrandingMembers)
{
    // Moving the shared region's last core away would strand the BE
    // app which lives only there.
    auto l = makeArq();
    const RegionId iso = l.isolatedRegionOf(0);
    for (int i = 0; i < 9; ++i)
        EXPECT_TRUE(l.moveResource(ResourceKind::Cores, 0, iso));
    EXPECT_EQ(l.region(0).res.cores, 1);
    EXPECT_FALSE(l.moveResource(ResourceKind::Cores, 0, iso));
    EXPECT_EQ(l.region(0).res.cores, 1); // unchanged after refusal
    EXPECT_TRUE(l.valid());
}

TEST(RegionLayout, MoveToSameRegionRefused)
{
    auto l = makeArq();
    EXPECT_FALSE(l.moveResource(ResourceKind::Cores, 0, 0));
}

TEST(RegionLayout, MoveMultipleUnits)
{
    auto l = makeArq();
    const RegionId iso = l.isolatedRegionOf(1);
    EXPECT_TRUE(l.moveResource(ResourceKind::LlcWays, 0, iso, 5));
    EXPECT_EQ(l.region(iso).res.llcWays, 5);
    EXPECT_EQ(l.region(0).res.llcWays, 15);
}

TEST(RegionLayout, ValidDetectsOverAllocation)
{
    RegionLayout l({4, 8, 4});
    Region r;
    r.name = "big";
    r.shared = true;
    r.members = {0};
    r.res = {5, 8, 4}; // more cores than available
    l.addRegion(std::move(r));
    EXPECT_FALSE(l.valid());
}

TEST(RegionLayout, ValidDetectsStrandedApp)
{
    RegionLayout l({4, 8, 4});
    Region r;
    r.name = "noway";
    r.shared = false;
    r.members = {0};
    r.res = {2, 0, 0}; // cores but no LLC way reachable
    l.addRegion(std::move(r));
    EXPECT_FALSE(l.valid());
}

TEST(RegionLayout, UnallocatedTracksLeftover)
{
    RegionLayout l({4, 8, 4});
    Region r;
    r.name = "half";
    r.shared = true;
    r.members = {0};
    r.res = {2, 4, 2};
    l.addRegion(std::move(r));
    EXPECT_EQ(l.unallocated(), (ResourceVector{2, 4, 2}));
    EXPECT_TRUE(l.valid());
}

TEST(RegionLayout, ConcreteMasksAreDisjointAndSized)
{
    auto l = RegionLayout::evenlyIsolated({10, 20, 10}, {0, 1, 2});
    const ConcreteMasks masks = l.concreteMasks();
    ASSERT_EQ(masks.coreMasks.size(), 3u);
    ASSERT_EQ(masks.wayMasks.size(), 3u);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(masks.coreMasks[i].count(), l.region(i).res.cores);
        EXPECT_EQ(masks.wayMasks[i].count(), l.region(i).res.llcWays);
    }
    // CAT masks must not overlap between isolated regions.
    EXPECT_EQ(masks.wayMasks[0].overlapWays(masks.wayMasks[1]), 0);
    EXPECT_EQ(masks.wayMasks[1].overlapWays(masks.wayMasks[2]), 0);
    EXPECT_EQ((masks.coreMasks[0] & masks.coreMasks[1]).count(), 0);
}

TEST(RegionLayout, ToStringMentionsRegions)
{
    auto l = makeArq();
    const std::string s = l.toString();
    EXPECT_NE(s.find("shared"), std::string::npos);
    EXPECT_NE(s.find("iso0"), std::string::npos);
}

TEST(RegionLayout, HasMember)
{
    auto l = makeArq();
    EXPECT_TRUE(l.region(0).hasMember(3));
    EXPECT_FALSE(l.region(l.isolatedRegionOf(0)).hasMember(3));
}

} // namespace

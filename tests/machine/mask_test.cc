/**
 * @file
 * Tests for core affinity masks and CAT way masks.
 */

#include <gtest/gtest.h>

#include "machine/mask.hh"

namespace
{

using ahq::machine::CoreMask;
using ahq::machine::WayMask;

TEST(CoreMask, FirstN)
{
    EXPECT_EQ(CoreMask::firstN(4).bits(), 0xfull);
    EXPECT_EQ(CoreMask::firstN(4, 2).bits(), 0x3cull);
    EXPECT_EQ(CoreMask::firstN(0).bits(), 0ull);
    EXPECT_EQ(CoreMask::firstN(64).count(), 64);
}

TEST(CoreMask, CountContains)
{
    CoreMask m = CoreMask::firstN(3, 1);
    EXPECT_EQ(m.count(), 3);
    EXPECT_FALSE(m.contains(0));
    EXPECT_TRUE(m.contains(1));
    EXPECT_TRUE(m.contains(3));
    EXPECT_FALSE(m.contains(4));
}

TEST(CoreMask, AddRemoveLowest)
{
    CoreMask m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.lowest(), -1);
    m.add(5);
    m.add(2);
    EXPECT_EQ(m.lowest(), 2);
    m.remove(2);
    EXPECT_EQ(m.lowest(), 5);
    m.remove(63); // removing an absent core is a no-op
    EXPECT_EQ(m.count(), 1);
}

TEST(CoreMask, SetOperations)
{
    const CoreMask a = CoreMask::firstN(4);      // 0-3
    const CoreMask b = CoreMask::firstN(4, 2);   // 2-5
    EXPECT_EQ((a & b).count(), 2);
    EXPECT_EQ((a | b).count(), 6);
}

TEST(CoreMask, ToStringHex)
{
    EXPECT_EQ(CoreMask::firstN(4).toString(), "0xf");
}

TEST(WayMask, ContiguousBits)
{
    WayMask w(4, 3);
    EXPECT_EQ(w.bits(), 0x70ull);
    EXPECT_EQ(w.count(), 3);
    EXPECT_EQ(w.first(), 4);
    EXPECT_TRUE(w.contains(4));
    EXPECT_TRUE(w.contains(6));
    EXPECT_FALSE(w.contains(7));
    EXPECT_FALSE(w.contains(3));
}

TEST(WayMask, EmptyMask)
{
    WayMask w;
    EXPECT_TRUE(w.empty());
    EXPECT_EQ(w.bits(), 0ull);
    EXPECT_EQ(w.count(), 0);
}

TEST(WayMask, Overlap)
{
    WayMask a(0, 10);
    WayMask b(5, 10);
    WayMask c(10, 5);
    EXPECT_EQ(a.overlapWays(b), 5);
    EXPECT_EQ(a.overlapWays(c), 0);
    EXPECT_EQ(b.overlapWays(c), 5);
    EXPECT_EQ(a.overlapWays(WayMask()), 0);
}

TEST(WayMask, ToStringHex)
{
    EXPECT_EQ(WayMask(0, 8).toString(), "0xff");
    EXPECT_EQ(WayMask(12, 8).toString(), "0xff000");
}

TEST(WayMask, FullWidth)
{
    WayMask w(0, 64);
    EXPECT_EQ(w.bits(), ~0ull);
}

} // namespace

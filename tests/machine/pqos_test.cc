/**
 * @file
 * Tests for the pqos/taskset command generation.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "machine/pqos.hh"

namespace
{

using namespace ahq::machine;

TEST(CoreList, RendersRangesAndSingles)
{
    CoreMask m;
    m.add(0);
    m.add(1);
    m.add(2);
    m.add(5);
    m.add(7);
    m.add(8);
    EXPECT_EQ(coreList(m), "0-2,5,7-8");
    EXPECT_EQ(coreList(CoreMask()), "");
    EXPECT_EQ(coreList(CoreMask::firstN(1, 3)), "3");
}

RegionLayout
arqLikeLayout()
{
    RegionLayout layout({10, 20, 10});
    Region shared;
    shared.name = "shared";
    shared.shared = true;
    shared.members = {0, 1, 2};
    shared.res = {6, 12, 7};
    layout.addRegion(std::move(shared));
    Region iso;
    iso.name = "iso0";
    iso.shared = false;
    iso.members = {0};
    iso.res = {4, 8, 3};
    layout.addRegion(std::move(iso));
    return layout;
}

TEST(Pqos, ProgramEmitsCatMbaAssocAndAffinity)
{
    PqosProgrammer prog(MachineConfig::xeonE52630v4(),
                        {{0, 100}, {1, 200}, {2, 300}});
    const auto cmds = prog.program(arqLikeLayout());

    int cat = 0, mba = 0, assoc = 0, aff = 0;
    for (const auto &c : cmds) {
        switch (c.kind) {
          case HwCommand::Kind::CatDefine:
            ++cat;
            break;
          case HwCommand::Kind::MbaDefine:
            ++mba;
            break;
          case HwCommand::Kind::CosAssociate:
            ++assoc;
            break;
          case HwCommand::Kind::Affinity:
            ++aff;
            break;
        }
    }
    EXPECT_EQ(cat, 2);   // two regions with ways
    EXPECT_EQ(mba, 2);   // two regions with bandwidth units
    EXPECT_EQ(assoc, 2); // two regions with cores
    EXPECT_EQ(aff, 3);   // three apps
}

TEST(Pqos, CommandTextMatchesPqosDialect)
{
    PqosProgrammer prog(MachineConfig::xeonE52630v4(), {{0, 1234}});
    RegionLayout layout({10, 20, 10});
    Region only;
    only.name = "r";
    only.shared = true;
    only.members = {0};
    only.res = {4, 8, 5};
    layout.addRegion(std::move(only));

    const auto lines = PqosProgrammer::toShell(prog.program(layout));
    ASSERT_EQ(lines.size(), 4u);
    EXPECT_EQ(lines[0], "pqos -e \"llc:1=0xff\"");
    EXPECT_EQ(lines[1], "pqos -e \"mba:1=50\"");
    EXPECT_EQ(lines[2], "pqos -a \"llc:1=0-3\"");
    EXPECT_EQ(lines[3], "taskset -cp 0-3 1234");
}

TEST(Pqos, PlaceholderPidWhenUnknown)
{
    PqosProgrammer prog(MachineConfig::xeonE52630v4());
    RegionLayout layout({10, 20, 10});
    Region only;
    only.name = "r";
    only.shared = true;
    only.members = {7};
    only.res = {2, 4, 0};
    layout.addRegion(std::move(only));
    const auto lines = PqosProgrammer::toShell(prog.program(layout));
    const bool found = std::any_of(
        lines.begin(), lines.end(), [](const std::string &l) {
            return l == "taskset -cp 0-1 $PID_APP7";
        });
    EXPECT_TRUE(found);
}

TEST(Pqos, AffinityCoversAllAppRegions)
{
    PqosProgrammer prog(MachineConfig::xeonE52630v4(), {{0, 42}});
    const auto layout = arqLikeLayout();
    const auto lines = PqosProgrammer::toShell(prog.program(layout));
    // App 0 can run in the shared region (cores 0-5) and its iso
    // region (cores 6-9): the taskset must cover both.
    const bool found = std::any_of(
        lines.begin(), lines.end(), [](const std::string &l) {
            return l == "taskset -cp 0-9 42";
        });
    EXPECT_TRUE(found);
}


TEST(Pqos, GoldConfigElevenWayCat)
{
    // The Gold 6248 part has an 11-way CAT: masks must stay within
    // 11 bits and MBA percentages follow its 10-unit granularity.
    PqosProgrammer prog(MachineConfig::xeonGold6248(), {{0, 1}});
    RegionLayout layout({20, 11, 10});
    Region r;
    r.name = "all";
    r.shared = true;
    r.members = {0};
    r.res = {20, 11, 10};
    layout.addRegion(std::move(r));
    const auto lines = PqosProgrammer::toShell(prog.program(layout));
    ASSERT_GE(lines.size(), 3u);
    EXPECT_EQ(lines[0], "pqos -e \"llc:1=0x7ff\"");
    EXPECT_EQ(lines[1], "pqos -e \"mba:1=100\"");
    EXPECT_EQ(lines[2], "pqos -a \"llc:1=0-19\"");
}

TEST(Pqos, DeltaOnlyReprogramsChanges)
{
    PqosProgrammer prog(MachineConfig::xeonE52630v4(),
                        {{0, 1}, {1, 2}, {2, 3}});
    const auto before = arqLikeLayout();
    auto after = before;
    // Move one core shared -> iso0: both regions change, and every
    // shared-region member's core coverage shifts.
    ASSERT_TRUE(after.moveResource(ResourceKind::Cores, 0, 1));

    const auto delta = prog.delta(before, after);
    const auto full = prog.program(after);
    EXPECT_LT(delta.size(), full.size());
    EXPECT_FALSE(delta.empty());

    // An untouched layout produces an empty delta.
    const auto none = prog.delta(before, before);
    EXPECT_TRUE(none.empty());
}

TEST(Pqos, DeltaSkipsUnaffectedApps)
{
    PqosProgrammer prog(MachineConfig::xeonE52630v4(),
                        {{0, 1}, {1, 2}, {2, 3}});
    const auto before = arqLikeLayout();
    auto after = before;
    // Move a bandwidth unit only: core masks unchanged, so no
    // taskset lines should be emitted.
    ASSERT_TRUE(after.moveResource(ResourceKind::MemBw, 0, 1));
    const auto delta = prog.delta(before, after);
    for (const auto &c : delta)
        EXPECT_NE(c.kind, HwCommand::Kind::Affinity) << c.text;
}

} // namespace

/**
 * @file
 * Tests for ResourceVector and ResourceKind.
 */

#include <gtest/gtest.h>

#include "machine/resources.hh"

namespace
{

using namespace ahq::machine;

TEST(ResourceKind, Names)
{
    EXPECT_EQ(toString(ResourceKind::Cores), "cores");
    EXPECT_EQ(toString(ResourceKind::LlcWays), "llc_ways");
    EXPECT_EQ(toString(ResourceKind::MemBw), "mem_bw");
}

TEST(ResourceVector, GetSetByKind)
{
    ResourceVector v;
    v.set(ResourceKind::Cores, 4);
    v.set(ResourceKind::LlcWays, 10);
    v.set(ResourceKind::MemBw, 3);
    EXPECT_EQ(v.get(ResourceKind::Cores), 4);
    EXPECT_EQ(v.get(ResourceKind::LlcWays), 10);
    EXPECT_EQ(v.get(ResourceKind::MemBw), 3);
    EXPECT_EQ(v.cores, 4);
}

TEST(ResourceVector, RefMutation)
{
    ResourceVector v{1, 2, 3};
    v.ref(ResourceKind::Cores) += 5;
    EXPECT_EQ(v.cores, 6);
}

TEST(ResourceVector, Arithmetic)
{
    const ResourceVector a{4, 10, 5};
    const ResourceVector b{1, 3, 2};
    EXPECT_EQ(a + b, (ResourceVector{5, 13, 7}));
    EXPECT_EQ(a - b, (ResourceVector{3, 7, 3}));
    ResourceVector c = a;
    c += b;
    EXPECT_EQ(c, a + b);
    c -= b;
    EXPECT_EQ(c, a);
}

TEST(ResourceVector, Predicates)
{
    EXPECT_TRUE((ResourceVector{0, 0, 0}).empty());
    EXPECT_FALSE((ResourceVector{1, 0, 0}).empty());
    EXPECT_TRUE((ResourceVector{1, 2, 3}).nonNegative());
    EXPECT_FALSE((ResourceVector{1, -1, 3}).nonNegative());
    EXPECT_TRUE((ResourceVector{1, 2, 3})
                    .fitsWithin(ResourceVector{2, 2, 3}));
    EXPECT_FALSE((ResourceVector{3, 2, 3})
                     .fitsWithin(ResourceVector{2, 2, 3}));
}

TEST(ResourceVector, TotalUnitsAndToString)
{
    const ResourceVector v{2, 5, 1};
    EXPECT_EQ(v.totalUnits(), 8);
    EXPECT_EQ(v.toString(), "{cores=2, ways=5, bw=1}");
}

TEST(ResourceVector, RotationOrderMatchesPartiesFsm)
{
    // The FSM order matters to the schedulers: cores, then ways,
    // then bandwidth.
    EXPECT_EQ(kAllResourceKinds[0], ResourceKind::Cores);
    EXPECT_EQ(kAllResourceKinds[1], ResourceKind::LlcWays);
    EXPECT_EQ(kAllResourceKinds[2], ResourceKind::MemBw);
    EXPECT_EQ(kNumResourceKinds, 3);
}

} // namespace

/**
 * @file
 * Tests for thread-local allocation counting (obs/alloc.hh) and its
 * span-profiler integration — the instrument that verifies the
 * epoch decision loop's zero-alloc steady state instead of trusting
 * code review.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "machine/config.hh"
#include "obs/alloc.hh"
#include "obs/span.hh"
#include "obs/trace_sink.hh"
#include "sched/arq.hh"

namespace
{

using ahq::obs::allocCountingEnabled;
using ahq::obs::threadAllocCount;

TEST(AllocCount, CountsHeapAllocations)
{
    if (!allocCountingEnabled())
        GTEST_SKIP() << "sanitizer build: counting compiled out";
    const auto before = threadAllocCount();
    auto p = std::make_unique<int>(42);
    const auto after = threadAllocCount();
    EXPECT_GE(after - before, 1u);
    // The pointer must stay live across the second read so the
    // allocation cannot be elided.
    EXPECT_EQ(*p, 42);
}

TEST(AllocCount, MonotonicAndFreeOfFalsePositives)
{
    if (!allocCountingEnabled())
        GTEST_SKIP() << "sanitizer build: counting compiled out";
    // Arithmetic on the stack must not move the counter.
    const auto before = threadAllocCount();
    volatile int x = 0;
    for (int i = 0; i < 1000; ++i)
        x = x + i;
    EXPECT_EQ(threadAllocCount(), before);
}

TEST(AllocCount, SpanRecordsAllocationDelta)
{
    if (!allocCountingEnabled())
        GTEST_SKIP() << "sanitizer build: counting compiled out";
    ahq::obs::SpanProfiler prof;
    ahq::obs::Scope scope;
    scope.prof = &prof;
    {
        ahq::obs::Span span(scope, "work");
        std::vector<int> v(4096, 7);
        EXPECT_EQ(v[0], 7);
    }
    const auto snap = prof.snapshot();
    ASSERT_EQ(snap.count("work"), 1u);
    EXPECT_GE(snap.at("work").allocs, 1u);
}

TEST(AllocCount, AllocsSerialisedOnlyUnderWallClock)
{
    ahq::obs::SpanProfiler prof;
    prof.record("work", 1000, 3);

    ahq::obs::BufferTraceSink deterministic;
    ahq::obs::Scope scope;
    scope.sink = &deterministic;
    prof.flush(scope);
    ASSERT_EQ(deterministic.lines().size(), 1u);
    EXPECT_EQ(deterministic.lines()[0].find("allocs"),
              std::string::npos);

    ahq::obs::BufferTraceSink timed;
    scope.sink = &timed;
    scope.wallClock = true;
    prof.flush(scope);
    ASSERT_EQ(timed.lines().size(), 1u);
    EXPECT_NE(timed.lines()[0].find("\"allocs\":3"),
              std::string::npos);
}

/**
 * The tentpole claim: once its scratch buffers are warm, ARQ's
 * whole monitor+decide path performs zero heap allocations per
 * interval. Counted, not reviewed.
 */
TEST(AllocCount, ArqSteadyStateDecisionLoopIsAllocFree)
{
    if (!allocCountingEnabled())
        GTEST_SKIP() << "sanitizer build: counting compiled out";

    ahq::sched::Arq arq;
    const auto mc = ahq::machine::MachineConfig::xeonE52630v4();

    std::vector<ahq::sched::AppObservation> obs(3);
    for (int i = 0; i < 3; ++i) {
        auto &o = obs[static_cast<std::size_t>(i)];
        o.id = i;
        o.latencyCritical = i < 2;
        o.thresholdMs = 10.0;
        o.idealP95Ms = 2.0;
        o.p95Ms = i == 0 ? 9.8 : 3.0; // app 0 in violation: moves
        o.ipcSolo = 2.0;
        o.ipc = 1.8;
    }
    auto layout = arq.initialLayout(mc, obs);

    // Warm-up: scratch buffers size themselves, the FSM map fills,
    // the first moves happen.
    double t = 0.0;
    for (int e = 0; e < 32; ++e, t += 0.5)
        arq.adjust(layout, obs, t);

    const auto before = threadAllocCount();
    for (int e = 0; e < 64; ++e, t += 0.5)
        arq.adjust(layout, obs, t);
    EXPECT_EQ(threadAllocCount(), before)
        << "ARQ decision loop allocated in steady state";
}

} // namespace

/**
 * @file
 * Interference attribution: ledger algebra, the conservation
 * property (per-epoch shares sum to the victim's measured R_i),
 * the headline "who is hurting my LC app" scenario, and the trace
 * byte-identity of attribution events at any thread count —
 * including under chaos fault injection.
 */

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <sstream>

#include "apps/catalog.hh"
#include "check/check.hh"
#include "cluster/epoch_sim.hh"
#include "exec/scenario_runner.hh"
#include "exec/thread_pool.hh"
#include "fault/plan.hh"
#include "obs/attribution.hh"
#include "obs/scope.hh"
#include "obs/trace_reader.hh"
#include "sched/registry.hh"

namespace
{

using namespace ahq;

cluster::SimulationConfig
shortConfig(std::uint64_t seed)
{
    cluster::SimulationConfig c;
    c.durationSeconds = 20.0;
    c.warmupEpochs = 10;
    c.seed = seed;
    c.attribute = true;
    return c;
}

// ---- ledger algebra -------------------------------------------------

TEST(AttributionLedger, AccumulatesAndSortsRows)
{
    obs::AttributionLedger l;
    EXPECT_TRUE(l.empty());
    l.add("xapian", "stream", "bandwidth", 0.10);
    l.add("xapian", "stream", "bandwidth", 0.05);
    l.add("xapian", "moses", "ways", 0.02);
    l.add("moses", "stream", "cores", 0.30);
    EXPECT_EQ(l.size(), 3u);

    const auto rows = l.rows();
    ASSERT_EQ(rows.size(), 3u);
    // Key-sorted: (victim, culprit, resource).
    EXPECT_EQ(rows[0].victim, "moses");
    EXPECT_EQ(rows[1].victim, "xapian");
    EXPECT_EQ(rows[1].culprit, "moses");
    EXPECT_EQ(rows[2].culprit, "stream");
    EXPECT_DOUBLE_EQ(rows[2].share, 0.15);
    EXPECT_EQ(rows[2].epochs, 2);

    EXPECT_DOUBLE_EQ(l.victimTotal("xapian"), 0.17);
    EXPECT_DOUBLE_EQ(l.victimTotal("moses"), 0.30);
    EXPECT_DOUBLE_EQ(l.victimTotal("nobody"), 0.0);
    EXPECT_EQ(l.topBlame("xapian"), "stream:bandwidth");
    EXPECT_EQ(l.topBlame("moses"), "stream:cores");
    EXPECT_EQ(l.topBlame("nobody"), "");
}

TEST(AttributionLedger, MergeIsCommutative)
{
    obs::AttributionLedger a, b;
    a.add("x", "s", "bandwidth", 0.1);
    a.add("x", "m", "ways", 0.2);
    b.add("x", "s", "bandwidth", 0.3);
    b.add("y", "s", "cores", 0.4);

    obs::AttributionLedger ab, ba;
    ab.merge(a);
    ab.merge(b);
    ba.merge(b);
    ba.merge(a);

    const auto ra = ab.rows(), rb = ba.rows();
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
        EXPECT_EQ(ra[i].victim, rb[i].victim);
        EXPECT_EQ(ra[i].culprit, rb[i].culprit);
        EXPECT_EQ(ra[i].resource, rb[i].resource);
        EXPECT_DOUBLE_EQ(ra[i].share, rb[i].share);
        EXPECT_EQ(ra[i].epochs, rb[i].epochs);
    }
}

TEST(AttributionLedger, RealCulpritOutranksNoiseResidual)
{
    obs::AttributionLedger l;
    l.add("x", obs::kNoiseCulpritName, "other", 0.9);
    l.add("x", "stream", "bandwidth", 0.01);
    // The residual row has 90x the share but never wins over a
    // real co-runner.
    EXPECT_EQ(l.topBlame("x"), "stream:bandwidth");

    obs::AttributionLedger only_noise;
    only_noise.add("y", obs::kNoiseCulpritName, "other", 0.5);
    EXPECT_EQ(only_noise.topBlame("y"),
              std::string(obs::kNoiseCulpritName) + ":other");
}

// ---- conservation: shares sum to R_i --------------------------------

/**
 * Every attribution event's shares must sum to its r_i within 1e-9,
 * and the run's ledger totals must equal the summed per-epoch R_i.
 * Randomized colocations (seeded, so reproducible) under every
 * registered strategy, with strict invariant audits riding along.
 */
TEST(AttributionConservation, SharesSumToRiAcrossAllStrategies)
{
    const std::vector<apps::AppProfile> lc_pool = {
        apps::xapian(), apps::moses(), apps::imgDnn(),
        apps::masstree(), apps::sphinx(), apps::silo()};
    const std::vector<apps::AppProfile> be_pool = {
        apps::stream(), apps::fluidanimate(),
        apps::streamcluster()};

    std::uint64_t seed = 1000;
    for (const std::string &strategy : sched::allStrategyNames()) {
        std::mt19937_64 rng(seed);
        std::uniform_real_distribution<double> load(0.2, 0.8);
        const auto pick = [&](const auto &pool) {
            return pool[rng() % pool.size()];
        };
        cluster::Node node(
            machine::MachineConfig::xeonE52630v4(),
            {cluster::lcAt(pick(lc_pool), load(rng)),
             cluster::lcAt(pick(lc_pool), load(rng)),
             cluster::be(pick(be_pool))});

        obs::BufferTraceSink sink;
        cluster::SimulationConfig cfg = shortConfig(seed++);
        cfg.obs.sink = &sink;
        cfg.checkMode = check::Mode::Strict;
        const auto sched = sched::makeScheduler(strategy);
        cluster::EpochSimulator sim(node, cfg);
        const auto res = sim.run(*sched);

        std::istringstream in(sink.str());
        const auto events = obs::readTrace(in);
        std::map<std::string, double> summed_ri;
        std::size_t attributed = 0;
        for (const auto &ev : events) {
            if (ev.type() != "attribution")
                continue;
            ++attributed;
            const double ri = ev.num("r_i");
            const auto shares = ev.nums("shares");
            const auto culprits = ev.strs("culprits");
            const auto resources = ev.strs("resources");
            ASSERT_EQ(shares.size(), culprits.size());
            ASSERT_EQ(shares.size(), resources.size());
            ASSERT_FALSE(shares.empty());
            double sum = 0.0;
            for (const double s : shares) {
                EXPECT_GE(s, 0.0);
                sum += s;
            }
            EXPECT_NEAR(sum, ri, 1e-9)
                << strategy << " epoch "
                << static_cast<int>(ev.num("epoch"));
            summed_ri[ev.str("app")] += ri;
        }
        // The colocations are overloaded enough that at least one
        // post-warmup epoch attributes something under every
        // strategy; if not, the test lost its teeth.
        EXPECT_GT(attributed, 0u) << strategy;

        // Ledger totals == summed per-epoch R_i per victim.
        for (const auto &[victim, total] : summed_ri) {
            EXPECT_NEAR(res.attribution.victimTotal(victim), total,
                        1e-9 * static_cast<double>(attributed + 1))
                << strategy << " " << victim;
        }
    }
}

// ---- the headline scenario ------------------------------------------

/**
 * The paper's motivating question: a cache/bandwidth-hungry
 * STREAM-like BE co-runner next to a cache-sensitive LC app. The
 * ledger must name the hog as the top culprit, with a bandwidth
 * share present in the decomposition.
 */
TEST(Attribution, StreamBeBlamedForXapianInterference)
{
    cluster::Node node(machine::MachineConfig::xeonE52630v4(),
                       {cluster::lcAt(apps::xapian(), 0.5),
                        cluster::be(apps::stream())});
    cluster::SimulationConfig cfg = shortConfig(42);
    const auto unmanaged = sched::makeScheduler("Unmanaged");
    cluster::EpochSimulator sim(node, cfg);
    const auto res = sim.run(*unmanaged);

    ASSERT_FALSE(res.attribution.empty());
    EXPECT_GT(res.attribution.victimTotal("xapian"), 0.0);
    EXPECT_EQ(res.attribution.topBlame("xapian").rfind("stream:", 0),
              0u)
        << res.attribution.topBlame("xapian");

    bool bandwidth_row = false;
    for (const auto &row : res.attribution.rows()) {
        if (row.victim == "xapian" && row.culprit == "stream" &&
            row.resource == "bandwidth" && row.share > 0.0)
            bandwidth_row = true;
    }
    EXPECT_TRUE(bandwidth_row);
}

/** Attribution must observe, never perturb the simulation. */
TEST(Attribution, ResultsBitwiseEqualWithAttributionOff)
{
    cluster::Node node(machine::MachineConfig::xeonE52630v4(),
                       {cluster::lcAt(apps::xapian(), 0.6),
                        cluster::lcAt(apps::moses(), 0.3),
                        cluster::be(apps::stream())});
    const auto run_with = [&](bool attribute, bool slo) {
        cluster::SimulationConfig cfg = shortConfig(7);
        cfg.attribute = attribute;
        cfg.slo = slo;
        const auto arq = sched::makeScheduler("ARQ");
        cluster::EpochSimulator sim(node, cfg);
        return sim.run(*arq);
    };
    const auto plain = run_with(false, false);
    const auto attributed = run_with(true, true);
    EXPECT_EQ(plain.meanES, attributed.meanES);
    EXPECT_EQ(plain.meanELc, attributed.meanELc);
    EXPECT_EQ(plain.meanEBe, attributed.meanEBe);
    EXPECT_EQ(plain.violations, attributed.violations);
    EXPECT_TRUE(plain.attribution.empty());
    EXPECT_FALSE(attributed.attribution.empty());
}

// ---- byte identity at any thread count ------------------------------

std::vector<exec::ScenarioJob>
attributedBatch(const fault::FaultPlan *faults)
{
    std::vector<exec::ScenarioJob> jobs;
    std::uint64_t seed = 21;
    for (const auto &strategy : {"ARQ", "Unmanaged", "PARTIES"}) {
        cluster::Node node(
            machine::MachineConfig::xeonE52630v4(),
            {cluster::lcAt(apps::xapian(), 0.7),
             cluster::lcAt(apps::moses(), 0.3),
             cluster::be(apps::stream())});
        cluster::SimulationConfig cfg = shortConfig(seed++);
        cfg.slo = true;
        cfg.sloTraits.targetAvailability = 0.9;
        cfg.sloTraits.fastWindowEpochs = 4;
        cfg.sloTraits.slowWindowEpochs = 12;
        cfg.sloTraits.burnThreshold = 1.0;
        cfg.faults = faults;
        jobs.push_back({strategy, node, cfg,
                        std::string("attr-") + strategy});
    }
    return jobs;
}

std::string
runBatch(int threads, const std::vector<exec::ScenarioJob> &jobs)
{
    exec::ThreadPool pool(threads);
    obs::BufferTraceSink sink;
    obs::Scope scope;
    scope.sink = &sink;
    exec::ScenarioRunner runner(&pool);
    runner.setObsScope(scope);
    runner.run(jobs);
    return sink.str();
}

TEST(AttributionDeterminism, TraceBytesIdenticalAt1_4_16Threads)
{
    const auto jobs = attributedBatch(nullptr);
    const std::string t1 = runBatch(1, jobs);
    const std::string t4 = runBatch(4, jobs);
    const std::string t16 = runBatch(16, jobs);
    ASSERT_FALSE(t1.empty());
    EXPECT_EQ(t1, t4);
    EXPECT_EQ(t1, t16);

    // The trace actually exercises the new event families.
    std::istringstream in(t1);
    std::size_t attributions = 0, alerts = 0;
    for (const auto &ev : obs::readTrace(in)) {
        if (ev.type() == "attribution")
            ++attributions;
        if (ev.type() == "alert_raise" ||
            ev.type() == "alert_clear")
            ++alerts;
    }
    EXPECT_GT(attributions, 0u);
    EXPECT_GT(alerts, 0u);
}

TEST(AttributionDeterminism, ChaosTraceBytesIdenticalAcrossThreads)
{
    const fault::FaultPlan plan = fault::FaultPlan::builtinChaos();
    const auto jobs = attributedBatch(&plan);
    const std::string t1 = runBatch(1, jobs);
    const std::string t16 = runBatch(16, jobs);
    ASSERT_FALSE(t1.empty());
    EXPECT_EQ(t1, t16);
}

} // namespace

/**
 * @file
 * JSON writer/reader: escaping round-trips through the trace
 * parser, number formatting is deterministic (std::to_chars), and
 * the reader fails loudly on malformed input.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "obs/json.hh"
#include "obs/trace_reader.hh"

namespace
{

namespace json = ahq::obs::json;
using ahq::obs::parseTraceLine;
using ahq::obs::readTrace;
using ahq::obs::readTraceFile;
using ahq::obs::TraceValue;

TEST(Json, EscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(json::quoted("plain"), "\"plain\"");
    EXPECT_EQ(json::quoted("a\"b"), "\"a\\\"b\"");
    EXPECT_EQ(json::quoted("back\\slash"), "\"back\\\\slash\"");
    EXPECT_EQ(json::quoted("tab\there"), "\"tab\\there\"");
    EXPECT_EQ(json::quoted("line\nbreak"), "\"line\\nbreak\"");
    EXPECT_EQ(json::quoted(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(Json, EscapingRoundTripsThroughTheReader)
{
    const std::string nasty =
        "quote\" back\\ tab\t nl\n cr\r ctl\x02 end";
    std::string line = "{\"type\":\"t\",\"s\":";
    json::appendString(line, nasty);
    line += "}";

    const auto ev = parseTraceLine(line);
    EXPECT_EQ(ev.str("s"), nasty);
}

TEST(Json, NumberFormattingIsShortestRoundTrip)
{
    std::string out;
    json::appendNumber(out, 0.5);
    EXPECT_EQ(out, "0.5");

    out.clear();
    json::appendNumber(out, static_cast<long long>(-42));
    EXPECT_EQ(out, "-42");

    // Same double -> same bytes, and parsing recovers the value
    // exactly — the trace byte-identity tests lean on this.
    const double v = 0.1 + 0.2;
    std::string a, b;
    json::appendNumber(a, v);
    json::appendNumber(b, v);
    EXPECT_EQ(a, b);
    const auto ev = parseTraceLine("{\"x\":" + a + "}");
    EXPECT_EQ(ev.num("x"), v);
}

TEST(Json, NonFiniteDoublesRenderAsNull)
{
    std::string out;
    json::appendNumber(out,
                       std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(out, "null");
    out.clear();
    json::appendNumber(out,
                       std::numeric_limits<double>::infinity());
    EXPECT_EQ(out, "null");

    const auto ev = parseTraceLine("{\"x\":null}");
    ASSERT_TRUE(ev.has("x"));
    EXPECT_EQ(ev.fields.at("x").kind, TraceValue::Kind::Null);
    EXPECT_EQ(ev.num("x", -1.0), -1.0); // null is not a number
}

TEST(Json, NegativeZeroRendersDeterministically)
{
    // -0.0 must render the same bytes every time and round-trip to
    // a value that compares equal to zero.
    std::string a, b;
    json::appendNumber(a, -0.0);
    json::appendNumber(b, -0.0);
    EXPECT_EQ(a, b);
    const auto ev = parseTraceLine("{\"x\":" + a + "}");
    EXPECT_EQ(ev.num("x"), 0.0);
    // +0.0 and -0.0 are distinct doubles; whatever the renderer
    // chooses, each must be stable.
    std::string pos1, pos2;
    json::appendNumber(pos1, 0.0);
    json::appendNumber(pos2, 0.0);
    EXPECT_EQ(pos1, pos2);
}

TEST(Json, DenormalsRenderShortestRoundTrip)
{
    for (const double v :
         {std::numeric_limits<double>::denorm_min(),
          1e-310, // mid-range subnormal
          std::numeric_limits<double>::min() / 2.0}) {
        std::string a, b;
        json::appendNumber(a, v);
        json::appendNumber(b, v);
        EXPECT_EQ(a, b) << "unstable rendering for " << v;
        const auto ev = parseTraceLine("{\"x\":" + a + "}");
        EXPECT_EQ(ev.num("x"), v)
            << "lossy round-trip for " << v;
    }
}

TEST(Json, EveryNonFiniteShapeRendersNull)
{
    // NaN (both signs), +/-Inf: all become the literal "null", so
    // a trace line can never contain invalid JSON tokens like
    // "nan" or "inf".
    for (const double v :
         {std::numeric_limits<double>::quiet_NaN(),
          -std::numeric_limits<double>::quiet_NaN(),
          std::numeric_limits<double>::signaling_NaN(),
          std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity()}) {
        std::string out;
        json::appendNumber(out, v);
        EXPECT_EQ(out, "null");
    }
}

TEST(Json, ReaderParsesArraysAndTypedAccessors)
{
    const auto ev = parseTraceLine(
        "{\"v\":1,\"type\":\"epoch\",\"ret\":[0.1,0.2,3],"
        "\"apps\":[\"a\",\"b\"],\"ok\":true}");
    EXPECT_EQ(ev.type(), "epoch");
    EXPECT_EQ(ev.num("v"), 1.0);
    EXPECT_EQ(ev.nums("ret"),
              (std::vector<double>{0.1, 0.2, 3.0}));
    EXPECT_EQ(ev.strs("apps"),
              (std::vector<std::string>{"a", "b"}));
    // Absent / wrong-kind fields fall back to defaults.
    EXPECT_EQ(ev.str("missing", "d"), "d");
    EXPECT_TRUE(ev.nums("apps").empty());
    EXPECT_FALSE(ev.has("nope"));
}

TEST(Json, ReaderRejectsMalformedLines)
{
    EXPECT_THROW(parseTraceLine("not json"), std::runtime_error);
    EXPECT_THROW(parseTraceLine("{\"a\":}"), std::runtime_error);
    EXPECT_THROW(parseTraceLine("{\"a\":1"), std::runtime_error);
    EXPECT_THROW(parseTraceLine("{\"a\":[1,}"),
                 std::runtime_error);
    EXPECT_THROW(parseTraceLine("{\"a\":{\"nested\":1}}"),
                 std::runtime_error);
}

TEST(Json, StreamReaderSkipsBlankLinesAndNumbersErrors)
{
    std::istringstream ok("{\"a\":1}\n\n{\"a\":2}\n");
    const auto evs = readTrace(ok);
    ASSERT_EQ(evs.size(), 2u);
    EXPECT_EQ(evs[1].num("a"), 2.0);

    std::istringstream bad("{\"a\":1}\ngarbage\n");
    try {
        readTrace(bad);
        FAIL() << "expected parse error";
    } catch (const std::runtime_error &e) {
        // The error names the offending line number.
        EXPECT_NE(std::string(e.what()).find("2"),
                  std::string::npos);
    }
}

TEST(Json, MissingTraceFileFailsLoudly)
{
    EXPECT_THROW(readTraceFile("/nonexistent/dir/trace.jsonl"),
                 std::runtime_error);
}

} // namespace

/**
 * @file
 * MetricsRegistry: counter/gauge semantics, histogram bucketing
 * (inclusive upper bounds, overflow bucket), and the merge rules
 * that make per-worker registries equivalent to a serial run.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "obs/metrics.hh"

namespace
{

using ahq::obs::HistogramSnapshot;
using ahq::obs::MetricsRegistry;

TEST(Metrics, CountersAccumulateAndDefaultToZero)
{
    MetricsRegistry m;
    EXPECT_DOUBLE_EQ(m.counter("missing"), 0.0);
    EXPECT_TRUE(m.empty());

    m.add("arq.move");
    m.add("arq.move");
    m.add("arq.move", 2.5);
    EXPECT_DOUBLE_EQ(m.counter("arq.move"), 4.5);
    EXPECT_FALSE(m.empty());
}

TEST(Metrics, GaugesAreLastWriteWins)
{
    MetricsRegistry m;
    EXPECT_DOUBLE_EQ(m.gauge("missing"), 0.0);
    m.set("fsm.state", 1.0);
    m.set("fsm.state", 3.0);
    EXPECT_DOUBLE_EQ(m.gauge("fsm.state"), 3.0);
}

TEST(Metrics, HistogramBucketingUsesInclusiveUpperBounds)
{
    MetricsRegistry m;
    const std::vector<double> bounds{1.0, 5.0, 10.0};

    // A value equal to a bound lands in that bound's bucket.
    m.observe("lat", 1.0, bounds);  // bucket 0 (v <= 1)
    m.observe("lat", 0.2, bounds);  // bucket 0
    m.observe("lat", 5.0, bounds);  // bucket 1 (v <= 5)
    m.observe("lat", 9.9, bounds);  // bucket 2
    m.observe("lat", 10.1, bounds); // overflow
    m.observe("lat", 1e9, bounds);  // overflow

    const HistogramSnapshot h = m.histogram("lat");
    ASSERT_EQ(h.bounds.size(), 3u);
    ASSERT_EQ(h.counts.size(), 4u); // bounds + overflow
    EXPECT_EQ(h.counts[0], 2u);
    EXPECT_EQ(h.counts[1], 1u);
    EXPECT_EQ(h.counts[2], 1u);
    EXPECT_EQ(h.counts[3], 2u);
    EXPECT_EQ(h.total, 6u);
    EXPECT_DOUBLE_EQ(h.sum, 1.0 + 0.2 + 5.0 + 9.9 + 10.1 + 1e9);
}

TEST(Metrics, HistogramLayoutFixedByFirstObservation)
{
    MetricsRegistry m;
    m.observe("x", 2.0, {1.0, 10.0});
    // Later bounds are ignored; the value is bucketed in the
    // original layout.
    m.observe("x", 2.0, {100.0});
    const auto h = m.histogram("x");
    ASSERT_EQ(h.bounds.size(), 2u);
    EXPECT_EQ(h.counts[1], 2u);
    EXPECT_EQ(h.total, 2u);
}

TEST(Metrics, MissingHistogramSnapshotIsEmpty)
{
    MetricsRegistry m;
    const auto h = m.histogram("absent");
    EXPECT_TRUE(h.bounds.empty());
    EXPECT_TRUE(h.counts.empty());
    EXPECT_EQ(h.total, 0u);
}

TEST(Metrics, MergeAddsCountersAndHistogramsTakesGauges)
{
    MetricsRegistry a;
    MetricsRegistry b;
    a.add("c", 2.0);
    b.add("c", 3.0);
    b.add("only_b", 1.0);
    a.set("g", 1.0);
    b.set("g", 9.0);
    a.observe("h", 0.5, {1.0, 2.0});
    b.observe("h", 1.5, {1.0, 2.0});
    b.observe("h", 99.0, {1.0, 2.0});

    a.merge(b);
    EXPECT_DOUBLE_EQ(a.counter("c"), 5.0);
    EXPECT_DOUBLE_EQ(a.counter("only_b"), 1.0);
    EXPECT_DOUBLE_EQ(a.gauge("g"), 9.0);

    const auto h = a.histogram("h");
    EXPECT_EQ(h.total, 3u);
    EXPECT_EQ(h.counts[0], 1u);
    EXPECT_EQ(h.counts[1], 1u);
    EXPECT_EQ(h.counts[2], 1u);
    EXPECT_DOUBLE_EQ(h.sum, 0.5 + 1.5 + 99.0);
}

TEST(Metrics, MergeOrderOfWorkersMatchesSerialTotals)
{
    // The property the exec layer relies on: counters and histogram
    // buckets commute, so per-worker registries merged in any order
    // equal one registry that saw every event.
    MetricsRegistry serial;
    MetricsRegistry w1;
    MetricsRegistry w2;
    for (int i = 0; i < 10; ++i) {
        serial.add("n");
        serial.observe("v", i, {3.0, 6.0});
        (i % 2 == 0 ? w1 : w2).add("n");
        (i % 2 == 0 ? w1 : w2).observe("v", i, {3.0, 6.0});
    }
    MetricsRegistry merged;
    merged.merge(w2);
    merged.merge(w1);
    EXPECT_DOUBLE_EQ(merged.counter("n"), serial.counter("n"));
    const auto hs = serial.histogram("v");
    const auto hm = merged.histogram("v");
    ASSERT_EQ(hm.counts.size(), hs.counts.size());
    for (std::size_t i = 0; i < hs.counts.size(); ++i)
        EXPECT_EQ(hm.counts[i], hs.counts[i]);
    EXPECT_EQ(hm.total, hs.total);
    EXPECT_DOUBLE_EQ(hm.sum, hs.sum);
}

TEST(Metrics, ObserveBucketedFoldsPrecountedValues)
{
    // The SpanProfiler flush path: whole buckets at a time, with
    // the sum supplied once.
    MetricsRegistry m;
    m.observeBucketed("h", {{0.5, 3}, {1.5, 2}, {99.0, 1}}, 12.5,
                      {1.0, 2.0});
    const auto h = m.histogram("h");
    ASSERT_EQ(h.counts.size(), 3u);
    EXPECT_EQ(h.counts[0], 3u);
    EXPECT_EQ(h.counts[1], 2u);
    EXPECT_EQ(h.counts[2], 1u); // overflow
    EXPECT_EQ(h.total, 6u);
    EXPECT_DOUBLE_EQ(h.sum, 12.5);
}

TEST(Metrics, HistogramMergeOrderNeverChangesSerialisedOutput)
{
    // Three registries with interleaved observations, merged in
    // two different orders: bucket counts AND the print() bytes
    // must match — the property that makes `ahq sweep --jobs N`
    // metrics independent of worker interleaving.
    auto fill = [](MetricsRegistry &r, int offset) {
        for (int i = 0; i < 9; ++i) {
            const double v = (i * 7 + offset) % 11;
            r.observe("lat", v, {2.0, 5.0, 8.0});
            r.add("events");
        }
        r.observeBucketed("pre", {{1.0, 2}, {6.0, 1}}, 8.0,
                          {2.0, 5.0, 8.0});
    };
    MetricsRegistry a1, b1, c1, a2, b2, c2;
    fill(a1, 0);
    fill(b1, 1);
    fill(c1, 2);
    fill(a2, 0);
    fill(b2, 1);
    fill(c2, 2);

    MetricsRegistry left;  // a, then b, then c
    left.merge(a1);
    left.merge(b1);
    left.merge(c1);
    MetricsRegistry right; // c, then a, then b
    right.merge(c2);
    right.merge(a2);
    right.merge(b2);

    const auto hl = left.histogram("lat");
    const auto hr = right.histogram("lat");
    ASSERT_EQ(hl.counts.size(), hr.counts.size());
    for (std::size_t i = 0; i < hl.counts.size(); ++i)
        EXPECT_EQ(hl.counts[i], hr.counts[i]);
    EXPECT_EQ(hl.total, hr.total);

    std::ostringstream sl, sr;
    left.print(sl);
    right.print(sr);
    EXPECT_EQ(sl.str(), sr.str());
}

TEST(Metrics, ConcurrentAddsIntoSharedRegistryAreExact)
{
    MetricsRegistry m;
    constexpr int kThreads = 4;
    constexpr int kPer = 2000;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&m] {
            for (int i = 0; i < kPer; ++i) {
                m.add("shared");
                m.observe("obs", 1.0, {2.0});
            }
        });
    }
    for (auto &t : ts)
        t.join();
    EXPECT_DOUBLE_EQ(m.counter("shared"),
                     double(kThreads) * kPer);
    EXPECT_EQ(m.histogram("obs").total,
              std::uint64_t(kThreads) * kPer);
}

TEST(Metrics, ClearDropsEverything)
{
    MetricsRegistry m;
    m.add("c");
    m.set("g", 1.0);
    m.observe("h", 1.0);
    m.clear();
    EXPECT_TRUE(m.empty());
    EXPECT_DOUBLE_EQ(m.counter("c"), 0.0);
}

TEST(Metrics, MergeWithMismatchedBoundsFoldsTotalsOnly)
{
    MetricsRegistry a;
    MetricsRegistry b;
    a.observe("h", 0.5, {1.0, 2.0});
    b.observe("h", 0.5, {10.0});

    a.merge(b);
    const auto h = a.histogram("h");
    ASSERT_EQ(h.bounds.size(), 2u); // our layout wins
    EXPECT_EQ(h.total, 2u);
    EXPECT_DOUBLE_EQ(h.sum, 1.0);
    // Bucket counts cannot be reconciled, so only ours remain.
    EXPECT_EQ(h.counts[0], 1u);
}

TEST(Metrics, PrintNamesEveryMetricWithKind)
{
    MetricsRegistry m;
    m.add("zeta.count", 2.0);
    m.set("alpha.gauge", 1.5);
    m.observe("mid.hist", 0.5, {1.0});
    std::ostringstream os;
    m.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("counter zeta.count"), std::string::npos);
    EXPECT_NE(out.find("gauge alpha.gauge"), std::string::npos);
    EXPECT_NE(out.find("histogram mid.hist"), std::string::npos);
}

} // namespace

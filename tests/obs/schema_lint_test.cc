/**
 * @file
 * Schema lint: docs/TRACE_SCHEMA.md is the contract for every JSONL
 * trace the project writes. This test parses the document's event
 * tables, then drives every emitter — the epoch simulator (with
 * attribution, SLO alerts, chaos faults, audits, spans and series),
 * the scenario runner, the fleet (with a node crash), the cluster
 * control plane and the experiment harness — and walks every
 * emitted event: its type must be documented and in the reader's
 * taxonomy, and every field must appear in the event's table (or
 * the shared header). A field added to an emitter without a schema
 * row fails here, not in a consumer three tools later.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "apps/catalog.hh"
#include "check/auditor.hh"
#include "cluster/cluster_sched.hh"
#include "cluster/epoch_sim.hh"
#include "cluster/fleet.hh"
#include "core/entropy.hh"
#include "exec/scenario_runner.hh"
#include "exec/thread_pool.hh"
#include "experiment/harness.hh"
#include "fault/plan.hh"
#include "obs/scope.hh"
#include "obs/span.hh"
#include "obs/timeseries.hh"
#include "obs/trace_reader.hh"
#include "sched/registry.hh"

namespace
{

using namespace ahq;

/** Event name -> documented field tokens (may contain <x> holes). */
using DocSchema = std::map<std::string, std::vector<std::string>>;

/** Backtick-delimited tokens of one markdown fragment. */
std::vector<std::string>
backtickTokens(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t i = 0;
    while ((i = text.find('`', i)) != std::string::npos) {
        const auto end = text.find('`', i + 1);
        if (end == std::string::npos)
            break;
        out.push_back(text.substr(i + 1, end - i - 1));
        i = end + 1;
    }
    return out;
}

/** Whether a token looks like an event name (`alert_raise`). */
bool
looksLikeEventName(const std::string &token)
{
    if (token.empty())
        return false;
    for (const char c : token) {
        if ((c < 'a' || c > 'z') && (c < '0' || c > '9') &&
            c != '_')
            return false;
    }
    return true;
}

/**
 * Parse the schema document: `###` headings name the event(s) (the
 * backticked tokens before the em-dash), and the next
 * `| field | ... |` table lists their fields. The header-fields
 * table and the bench-entries section are recognised by their `##`
 * headings.
 */
DocSchema
parseSchemaDoc(const std::string &path,
               std::set<std::string> *header_fields)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.is_open()) << "cannot open " << path;
    DocSchema schema;
    std::vector<std::string> current; // events the next table feeds
    bool in_field_table = false;
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("#", 0) == 0) {
            in_field_table = false;
            current.clear();
            if (line.find("Header fields") != std::string::npos) {
                current.push_back("<header>");
            } else if (line.find("Bench entries") !=
                       std::string::npos) {
                current.push_back("bench");
            } else if (line.rfind("### ", 0) == 0) {
                // Only the part before the em-dash names events.
                std::string head = line;
                const auto dash = head.find("\xe2\x80\x94");
                if (dash != std::string::npos)
                    head = head.substr(0, dash);
                for (const auto &tok : backtickTokens(head)) {
                    if (looksLikeEventName(tok))
                        current.push_back(tok);
                }
            }
            continue;
        }
        if (line.rfind("| field |", 0) == 0) {
            in_field_table = !current.empty();
            continue;
        }
        if (!in_field_table)
            continue;
        if (line.rfind("|---", 0) == 0)
            continue;
        if (line.rfind("|", 0) != 0) {
            in_field_table = false;
            continue;
        }
        // First cell of a field row: `| `f1`, `f2` | type | ... |`.
        const auto cell_end = line.find('|', 1);
        if (cell_end == std::string::npos)
            continue;
        const std::string cell = line.substr(1, cell_end - 1);
        for (const auto &tok : backtickTokens(cell)) {
            for (const auto &ev : current) {
                if (ev == "<header>") {
                    if (header_fields != nullptr)
                        header_fields->insert(tok);
                } else {
                    schema[ev].push_back(tok);
                }
            }
        }
        // Make sure every documented event has an entry even if a
        // row only names fields for its sibling.
        for (const auto &ev : current) {
            if (ev != "<header>")
                schema[ev];
        }
    }
    return schema;
}

/**
 * Whether a documented token matches an emitted field name.
 * Tokens may contain `<hole>` placeholders (e.g. `<m>_<e>_est`)
 * standing for one-or-more characters.
 */
bool
tokenMatches(const std::string &doc, const std::string &field)
{
    if (doc.find('<') == std::string::npos)
        return doc == field;
    std::size_t di = 0, fi = 0;
    bool wild = false;
    while (di < doc.size()) {
        if (doc[di] == '<') {
            const auto close = doc.find('>', di);
            if (close == std::string::npos)
                return false;
            di = close + 1;
            wild = true;
            continue;
        }
        auto lit_end = doc.find('<', di);
        if (lit_end == std::string::npos)
            lit_end = doc.size();
        const std::string lit = doc.substr(di, lit_end - di);
        if (wild) {
            const auto pos = field.find(lit, fi + 1);
            if (pos == std::string::npos)
                return false;
            fi = pos + lit.size();
        } else {
            if (field.compare(fi, lit.size(), lit) != 0)
                return false;
            fi += lit.size();
        }
        wild = false;
        di = lit_end;
    }
    return wild ? fi < field.size() : fi == field.size();
}

/**
 * The complete schema-v1 taxonomy. Kept in lockstep with
 * docs/TRACE_SCHEMA.md and obs::isKnownTraceType — a type added to
 * either without the other (or without this list) fails below.
 */
const std::set<std::string> &
expectedTaxonomy()
{
    static const std::set<std::string> kTypes = {
        "alert_clear",      "alert_raise",
        "arq_decision",     "attribution",
        "bench",            "clite_decision",
        "cluster_end",      "cluster_migrate",
        "cluster_round",    "cluster_start",
        "epoch",            "experiment_block",
        "experiment_end",   "experiment_start",
        "fault",            "fleet_end",
        "fleet_node",       "fleet_start",
        "parties_decision", "policy_swap",
        "recovery",         "run_end",
        "run_start",        "scenario_end",
        "scenario_start",   "series",
        "span",             "violation",
    };
    return kTypes;
}

// ---- event generation ------------------------------------------------

cluster::SimulationConfig
lintConfig(std::uint64_t seed)
{
    cluster::SimulationConfig c;
    c.durationSeconds = 20.0;
    c.warmupEpochs = 4;
    c.seed = seed;
    c.attribute = true;
    c.slo = true;
    c.sloTraits.targetAvailability = 0.9;
    c.sloTraits.fastWindowEpochs = 4;
    c.sloTraits.slowWindowEpochs = 8;
    c.sloTraits.burnThreshold = 1.0;
    return c;
}

/** A fault plan with every single-node seam (no crash). */
fault::FaultPlan
spikyPlan()
{
    fault::FaultPlan plan;
    fault::MeasurementFault m;
    m.pDrop = 0.25;
    m.extraSigma = 0.1;
    plan.setMeasurement(m);
    fault::ActuationFault a;
    a.pFail = 0.4;
    a.mode = fault::ActuationFault::Mode::Partial;
    a.retries = 2;
    plan.setActuation(a);
    // Spike then recover, so the SLO alert both raises and clears.
    plan.addSpike({0, 2.0, 9.0, 3.0});
    return plan;
}

/** One simulator run per decision family, all seams on. */
std::string
simulatorTraces()
{
    const fault::FaultPlan plan = spikyPlan();
    std::string bytes;
    std::uint64_t seed = 31;
    for (const auto &strategy : {"ARQ", "PARTIES", "CLITE"}) {
        cluster::Node node(
            machine::MachineConfig::xeonE52630v4(),
            {cluster::lcAt(apps::xapian(), 0.55),
             cluster::lcAt(apps::moses(), 0.3),
             cluster::be(apps::stream())});
        obs::BufferTraceSink sink;
        obs::SpanProfiler prof;
        obs::TimeSeriesRegistry series;
        cluster::SimulationConfig cfg = lintConfig(seed++);
        cfg.obs.sink = &sink;
        cfg.obs.prof = &prof;
        cfg.obs.series = &series;
        cfg.obs.scenario = strategy;
        cfg.faults = &plan;
        const auto sched = sched::makeScheduler(strategy);
        cluster::EpochSimulator sim(node, cfg);
        sim.run(*sched);
        prof.flush(cfg.obs);
        series.flush(cfg.obs);
        bytes += sink.str();
    }
    return bytes;
}

/** A two-job batch for the scenario_start/scenario_end family. */
std::string
scenarioTraces()
{
    std::vector<exec::ScenarioJob> jobs;
    for (const auto &strategy : {"ARQ", "Unmanaged"}) {
        cluster::Node node(
            machine::MachineConfig::xeonE52630v4(),
            {cluster::lcAt(apps::xapian(), 0.5),
             cluster::be(apps::stream())});
        cluster::SimulationConfig cfg = lintConfig(7);
        jobs.push_back({strategy, node, cfg,
                        std::string("lint-") + strategy});
    }
    exec::ThreadPool pool(2);
    obs::BufferTraceSink sink;
    obs::Scope scope;
    scope.sink = &sink;
    exec::ScenarioRunner runner(&pool);
    runner.setObsScope(scope);
    runner.run(jobs);
    return sink.str();
}

/** A fleet with a mid-run node crash (fault + failover recovery). */
std::string
fleetTraces()
{
    fault::FaultPlan plan;
    plan.addCrash({1, 8.0});
    cluster::Fleet fleet;
    fleet.addNode(
        cluster::Node(machine::MachineConfig::xeonE52630v4(),
                      {cluster::lcAt(apps::xapian(), 0.6),
                       cluster::be(apps::stream())}),
        sched::makeScheduler("ARQ"));
    fleet.addNode(
        cluster::Node(machine::MachineConfig::xeonE52630v4(),
                      {cluster::lcAt(apps::moses(), 0.3),
                       cluster::be(apps::fluidanimate())}),
        sched::makeScheduler("Unmanaged"));
    obs::BufferTraceSink sink;
    cluster::SimulationConfig cfg = lintConfig(11);
    cfg.obs.sink = &sink;
    cfg.faults = &plan;
    exec::ThreadPool pool(2);
    fleet.run(cfg, &pool);
    return sink.str();
}

/** An imbalanced cluster that migrates (cluster_* with blame). */
std::string
clusterTraces()
{
    cluster::ClusterConfig cc;
    cc.rounds = 3;
    cc.spreadThreshold = 0.01;
    cluster::ClusterScheduler cs(cc, "ARQ");
    const auto mc = machine::MachineConfig::xeonE52630v4()
                        .withAvailable(6, 10, 6);
    cs.addNode(mc, {cluster::lcAt(apps::xapian(), 0.85),
                    cluster::lcAt(apps::moses(), 0.6),
                    cluster::be(apps::stream()),
                    cluster::be(apps::fluidanimate())});
    cs.addNode(mc, {cluster::lcAt(apps::sphinx(), 0.15)});
    cs.addNode(mc, {cluster::lcAt(apps::imgDnn(), 0.15)});
    obs::BufferTraceSink sink;
    cluster::SimulationConfig base;
    base.durationSeconds = 1.0; // overridden per round
    base.attribute = true;
    base.obs.sink = &sink;
    cs.run(base);
    return sink.str();
}

/** A tiny switchback experiment (experiment_* + policy_swap). */
std::string
experimentTraces()
{
    experiment::ExperimentRunConfig cfg;
    cfg.design.kind = experiment::DesignKind::Switchback;
    cfg.design.armA = "ARQ";
    cfg.design.armB = "Unmanaged";
    cfg.design.blockEpochs = 6;
    cfg.design.blocksPerNode = 2;
    cfg.design.numNodes = 2;
    obs::BufferTraceSink sink;
    cfg.base.obs.sink = &sink;
    cfg.load.numNodes = 2;
    exec::ThreadPool pool(2);
    experiment::runExperiment(cfg, &pool);
    return sink.str();
}

/** One invariant-audit failure through the real reporting path. */
std::string
violationTraces()
{
    obs::BufferTraceSink sink;
    obs::Scope scope;
    scope.sink = &sink;
    scope.scenario = "audit";
    check::InvariantAuditor auditor(check::Mode::Log, scope);
    core::EntropyReport bad;
    bad.eLc = 1.5; // out of [0, 1]
    bad.eS = 1.5;
    auditor.checkEntropy(bad, 1.0, true, false, 3, 1.5);
    EXPECT_GT(auditor.violationCount(), 0u);
    return sink.str();
}

// ---- the lint itself -------------------------------------------------

TEST(SchemaLint, DocumentMatchesReaderTaxonomy)
{
    std::set<std::string> header;
    const DocSchema schema =
        parseSchemaDoc(AHQ_TRACE_SCHEMA_MD, &header);

    // The shared header is fully documented.
    for (const char *f : {"v", "type", "scenario", "epoch"})
        EXPECT_TRUE(header.count(f)) << "header field " << f;

    // Doc <-> reader <-> this test agree on the taxonomy, both
    // directions: nothing documented that the reader flags unknown,
    // nothing known that the document omits.
    for (const auto &[event, fields] : schema) {
        EXPECT_TRUE(obs::isKnownTraceType(event))
            << "documented but unknown to the reader: " << event;
        EXPECT_TRUE(expectedTaxonomy().count(event))
            << "documented but missing from the lint list: "
            << event;
    }
    for (const auto &event : expectedTaxonomy()) {
        EXPECT_TRUE(schema.count(event))
            << "in the taxonomy but undocumented: " << event;
        EXPECT_TRUE(obs::isKnownTraceType(event)) << event;
    }
    EXPECT_FALSE(obs::isKnownTraceType("not_an_event"));
}

TEST(SchemaLint, EveryEmittedEventAndFieldIsDocumented)
{
    std::set<std::string> header;
    const DocSchema schema =
        parseSchemaDoc(AHQ_TRACE_SCHEMA_MD, &header);
    ASSERT_FALSE(schema.empty());

    const std::string bytes = simulatorTraces() +
        scenarioTraces() + fleetTraces() + clusterTraces() +
        experimentTraces() + violationTraces();

    std::istringstream in(bytes);
    obs::TraceReadStats stats;
    std::set<std::string> seen;
    obs::forEachTrace(
        in,
        [&](const obs::TraceEvent &ev, int line) {
            const std::string type = ev.type();
            seen.insert(type);
            ASSERT_TRUE(schema.count(type))
                << "line " << line
                << ": undocumented event type " << type;
            const auto &doc_fields = schema.at(type);
            for (const auto &[field, value] : ev.fields) {
                if (header.count(field))
                    continue;
                bool documented = false;
                for (const auto &tok : doc_fields)
                    documented =
                        documented || tokenMatches(tok, field);
                EXPECT_TRUE(documented)
                    << "line " << line << ": " << type << "."
                    << field << " is not in docs/TRACE_SCHEMA.md";
            }
        },
        &stats);
    EXPECT_EQ(stats.unknownEvents, 0u);

    // The generated corpus exercises the full taxonomy (bench
    // entries come from the bench binaries, not a library, so they
    // are linted statically above instead).
    std::set<std::string> expected = expectedTaxonomy();
    expected.erase("bench");
    for (const auto &event : expected) {
        EXPECT_TRUE(seen.count(event))
            << "no " << event
            << " event generated; the lint never saw one";
    }
}

TEST(SchemaLint, FieldTokenMatcher)
{
    EXPECT_TRUE(tokenMatches("e_s", "e_s"));
    EXPECT_FALSE(tokenMatches("e_s", "e_sx"));
    EXPECT_TRUE(tokenMatches("<m>_<e>_est", "es_naive_est"));
    EXPECT_TRUE(tokenMatches("<m>_<e>_lo", "p95_mixed_lo"));
    EXPECT_FALSE(tokenMatches("<m>_<e>_est", "es_naive_lo"));
    EXPECT_FALSE(tokenMatches("<m>_<e>_est", "_est"));
}

} // namespace

/**
 * @file
 * obs::Scope and sinks: disabled scopes are no-ops, event lines
 * have a stable header + call-order payload, derived scopes copy
 * context, and FileTraceSink handles paths the way outputDir()
 * does — create parents, fail loudly on unwritable locations.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "obs/scope.hh"
#include "obs/trace_reader.hh"

namespace
{

namespace fs = std::filesystem;
using ahq::obs::BufferTraceSink;
using ahq::obs::Event;
using ahq::obs::FileTraceSink;
using ahq::obs::kSchemaVersion;
using ahq::obs::MetricsRegistry;
using ahq::obs::readTraceFile;
using ahq::obs::Scope;

TEST(Scope, DisabledScopeIsANoOp)
{
    const Scope off; // both pointers null
    EXPECT_FALSE(off.tracing());
    // None of these may crash or record anything.
    off.emit(Event("epoch").num("t", 1.0));
    off.count("x");
    off.gauge("g", 2.0);
    off.observe("h", 3.0);
}

TEST(Scope, EventHeaderThenFieldsInCallOrder)
{
    // render() returns a view into the event's arena: copy it
    // out (direct-init — std::string's string_view ctor is
    // explicit) before the Event is destroyed.
    const std::string line(Event("arq_decision")
                               .str("action", "move")
                               .num("e_s", 0.25)
                               .integer("victim", 2)
                               .nums("ret", {0.1, 0.2})
                               .ints("regions", {1, 3})
                               .strs("apps", {"a", "b"})
                               .render("s1", 7));
    EXPECT_EQ(line,
              "{\"v\":1,\"type\":\"arq_decision\","
              "\"scenario\":\"s1\",\"epoch\":7,"
              "\"action\":\"move\",\"e_s\":0.25,\"victim\":2,"
              "\"ret\":[0.1,0.2],\"regions\":[1,3],"
              "\"apps\":[\"a\",\"b\"]}");
}

TEST(Scope, HeaderOmitsEmptyScenarioAndNegativeEpoch)
{
    EXPECT_EQ(Event("run_start").render("", -1),
              "{\"v\":1,\"type\":\"run_start\"}");
}

TEST(Scope, EmitStampsScenarioAndEpoch)
{
    BufferTraceSink sink;
    MetricsRegistry metrics;
    Scope scope;
    scope.sink = &sink;
    scope.metrics = &metrics;
    scope.scenario = "ARQ@50";
    scope.epoch = 3;
    EXPECT_TRUE(scope.tracing());

    scope.emit(Event("epoch").num("t", 1.5));
    scope.count("sim.epochs");
    scope.observe("lat", 2.0);

    const auto lines = sink.lines();
    ASSERT_EQ(lines.size(), 1u);
    const auto ev = ahq::obs::parseTraceLine(lines[0]);
    EXPECT_EQ(ev.num("v"), kSchemaVersion);
    EXPECT_EQ(ev.type(), "epoch");
    EXPECT_EQ(ev.str("scenario"), "ARQ@50");
    EXPECT_EQ(ev.num("epoch"), 3.0);
    EXPECT_EQ(ev.num("t"), 1.5);
    EXPECT_DOUBLE_EQ(metrics.counter("sim.epochs"), 1.0);
    EXPECT_EQ(metrics.histogram("lat").total, 1u);
}

TEST(Scope, DerivedScopesCopyContextAndShareSink)
{
    BufferTraceSink sink;
    BufferTraceSink other;
    Scope base;
    base.sink = &sink;

    const Scope tagged = base.tagged("node0");
    const Scope at = tagged.atEpoch(5);
    const Scope redirected = at.withSink(&other);

    tagged.emit(Event("a"));
    at.emit(Event("b"));
    redirected.emit(Event("c"));

    const auto lines = sink.lines();
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], "{\"v\":1,\"type\":\"a\","
                        "\"scenario\":\"node0\"}");
    EXPECT_EQ(lines[1], "{\"v\":1,\"type\":\"b\","
                        "\"scenario\":\"node0\",\"epoch\":5}");
    const auto redirected_lines = other.lines();
    ASSERT_EQ(redirected_lines.size(), 1u);
    EXPECT_EQ(redirected_lines[0],
              "{\"v\":1,\"type\":\"c\","
              "\"scenario\":\"node0\",\"epoch\":5}");
    // base is untouched by the derived copies.
    EXPECT_TRUE(base.scenario.empty());
    EXPECT_EQ(base.epoch, -1);
}

TEST(Scope, FileTraceSinkCreatesParentDirectories)
{
    const fs::path dir = fs::path(testing::TempDir()) /
                         "ahq_obs_test" / "nested" / "deeper";
    const fs::path file = dir / "trace.jsonl";
    fs::remove_all(fs::path(testing::TempDir()) / "ahq_obs_test");

    {
        FileTraceSink sink(file.string());
        EXPECT_EQ(sink.path(), file.string());
        Scope scope;
        scope.sink = &sink;
        scope.emit(Event("run_start").str("scheduler", "ARQ"));
        sink.flush();
    }

    ASSERT_TRUE(fs::exists(file));
    const auto events = readTraceFile(file.string());
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].type(), "run_start");
    EXPECT_EQ(events[0].str("scheduler"), "ARQ");
    fs::remove_all(fs::path(testing::TempDir()) / "ahq_obs_test");
}

TEST(Scope, FileTraceSinkRejectsParentThatIsAFile)
{
    const fs::path blocker =
        fs::path(testing::TempDir()) / "ahq_obs_blocker";
    { std::ofstream(blocker.string()) << "x"; }

    const std::string target = (blocker / "trace.jsonl").string();
    try {
        FileTraceSink sink(target);
        FAIL() << "expected constructor to throw";
    } catch (const std::runtime_error &e) {
        // The error names the offending path.
        EXPECT_NE(std::string(e.what()).find(blocker.string()),
                  std::string::npos);
    }
    fs::remove(blocker);
}

TEST(Scope, BufferTraceSinkAccumulatesAndClears)
{
    BufferTraceSink sink;
    sink.write("{\"a\":1}");
    sink.write("{\"a\":2}");
    EXPECT_EQ(sink.str(), "{\"a\":1}\n{\"a\":2}\n");
    ASSERT_EQ(sink.lines().size(), 2u);
    sink.clear();
    EXPECT_TRUE(sink.str().empty());
    EXPECT_TRUE(sink.lines().empty());
}

} // namespace

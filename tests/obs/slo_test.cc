/**
 * @file
 * SLO burn-rate monitor: raise/clear mechanics with hysteresis,
 * summary accounting and merging, and the simulator integration —
 * alert events bypass trace sampling exactly like `violation`.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "apps/catalog.hh"
#include "cluster/epoch_sim.hh"
#include "obs/metrics.hh"
#include "obs/scope.hh"
#include "obs/slo.hh"
#include "obs/trace_reader.hh"
#include "sched/registry.hh"

namespace
{

using namespace ahq;

obs::SloTraits
tightTraits()
{
    obs::SloTraits t;
    t.targetAvailability = 0.9; // budget 0.1
    t.fastWindowEpochs = 4;
    t.slowWindowEpochs = 8;
    t.burnThreshold = 1.0;
    t.clearRatio = 0.5;
    return t;
}

TEST(SloMonitor, RaisesAfterFullFastWindowAndClearsWithHysteresis)
{
    obs::SloMonitor mon(1, tightTraits());

    // Three violating epochs: burning hard, but the fast window is
    // not full yet — no raise on partial evidence.
    for (int e = 0; e < 3; ++e) {
        const auto tr = mon.observe(0, e, true);
        EXPECT_EQ(tr.kind, obs::SloAlertTransition::Kind::None);
        EXPECT_FALSE(mon.active(0));
    }

    // Fourth violation fills the fast window: burn = (4/4)/0.1 = 10
    // in both windows, alert raises.
    const auto raise = mon.observe(0, 3, true);
    EXPECT_EQ(raise.kind, obs::SloAlertTransition::Kind::Raise);
    EXPECT_DOUBLE_EQ(raise.burnFast, 10.0);
    EXPECT_DOUBLE_EQ(raise.burnSlow, 10.0);
    EXPECT_TRUE(mon.active(0));

    // Healthy epochs drain the windows. The fast window empties at
    // epoch 7, but the slow window still holds the 4 violations —
    // hysteresis keeps the alert up until BOTH drop below
    // threshold * clearRatio.
    for (int e = 4; e < 11; ++e) {
        const auto tr = mon.observe(0, e, false);
        EXPECT_EQ(tr.kind, obs::SloAlertTransition::Kind::None)
            << "epoch " << e;
        EXPECT_TRUE(mon.active(0)) << "epoch " << e;
    }

    // Epoch 11: the last violation retires from the slow window,
    // both burns hit 0 — clear, with the alert's full duration.
    const auto clear = mon.observe(0, 11, false);
    EXPECT_EQ(clear.kind, obs::SloAlertTransition::Kind::Clear);
    EXPECT_DOUBLE_EQ(clear.burnFast, 0.0);
    EXPECT_DOUBLE_EQ(clear.burnSlow, 0.0);
    EXPECT_EQ(clear.durationEpochs, 8);
    EXPECT_FALSE(mon.active(0));

    const auto s = mon.summary();
    EXPECT_EQ(s.raises, 1);
    EXPECT_EQ(s.clears, 1);
    EXPECT_EQ(s.activeAtEnd, 0);
    EXPECT_EQ(s.alertEpochs, 8); // epochs 3..10 under the alert
    EXPECT_DOUBLE_EQ(s.worstBurn, 10.0);
}

TEST(SloMonitor, NoAlertBelowThreshold)
{
    // One violation in ten epochs: the fast window peaks at burn
    // (1/4)/0.1 = 2.5, below the threshold — and the early single-
    // violation spike (burn 10 at one observation) is masked by the
    // full-fast-window guard. No raise, ever.
    obs::SloTraits t = tightTraits();
    t.burnThreshold = 3.0;
    obs::SloMonitor mon(1, t);
    for (int e = 0; e < 40; ++e) {
        const auto tr = mon.observe(0, e, e % 10 == 0);
        EXPECT_EQ(tr.kind, obs::SloAlertTransition::Kind::None);
    }
    EXPECT_EQ(mon.summary().raises, 0);
    EXPECT_EQ(mon.summary().alertEpochs, 0);
}

TEST(SloMonitor, BoundaryEpochDoesNotFlap)
{
    // Alternate violating/healthy epochs around the threshold: once
    // raised, the alert must not clear at the first dip below the
    // raise threshold (that is what clearRatio < 1 buys).
    obs::SloMonitor mon(1, tightTraits());
    int transitions = 0;
    for (int e = 0; e < 64; ++e) {
        const auto tr = mon.observe(0, e, e % 2 == 0);
        if (tr.kind != obs::SloAlertTransition::Kind::None)
            ++transitions;
    }
    // Burn oscillates around 5 — far above clear_at = 0.5 — so the
    // one raise never clears.
    EXPECT_EQ(transitions, 1);
    EXPECT_TRUE(mon.active(0));
    EXPECT_EQ(mon.summary().activeAtEnd, 1);
}

TEST(SloMonitor, PerAppStateIsIndependent)
{
    obs::SloMonitor mon(2, tightTraits());
    for (int e = 0; e < 8; ++e) {
        mon.observe(0, e, true);  // app 0 burns
        mon.observe(1, e, false); // app 1 healthy
    }
    EXPECT_TRUE(mon.active(0));
    EXPECT_FALSE(mon.active(1));
    EXPECT_EQ(mon.summary().raises, 1);
}

TEST(SloSummary, MergeSumsAndKeepsWorstBurn)
{
    obs::SloSummary a, b;
    a.raises = 2;
    a.clears = 1;
    a.activeAtEnd = 1;
    a.alertEpochs = 30;
    a.worstBurn = 4.0;
    b.raises = 1;
    b.clears = 1;
    b.activeAtEnd = 0;
    b.alertEpochs = 5;
    b.worstBurn = 9.0;

    obs::SloSummary ab = a, ba = b;
    ab.merge(b);
    ba.merge(a);
    EXPECT_EQ(ab.raises, 3);
    EXPECT_EQ(ab.clears, 2);
    EXPECT_EQ(ab.activeAtEnd, 1);
    EXPECT_EQ(ab.alertEpochs, 35);
    EXPECT_DOUBLE_EQ(ab.worstBurn, 9.0);
    EXPECT_EQ(ba.raises, ab.raises);
    EXPECT_DOUBLE_EQ(ba.worstBurn, ab.worstBurn);
}

// ---- simulator integration ------------------------------------------

cluster::SimulationConfig
sloConfig(std::uint64_t seed)
{
    cluster::SimulationConfig c;
    c.durationSeconds = 20.0;
    c.warmupEpochs = 10;
    c.seed = seed;
    c.slo = true;
    c.sloTraits = tightTraits();
    return c;
}

TEST(SloIntegration, OverloadedRunRaisesAndCountsAlerts)
{
    // xapian at 0.9 load under an unmanaged colocation with STREAM
    // violates its QoS target persistently: the alert must raise
    // and the slo.* counters must mirror the summary.
    cluster::Node node(machine::MachineConfig::xeonE52630v4(),
                       {cluster::lcAt(apps::xapian(), 0.9),
                        cluster::be(apps::stream())});
    obs::MetricsRegistry metrics;
    cluster::SimulationConfig cfg = sloConfig(5);
    cfg.obs.metrics = &metrics;
    const auto unmanaged = sched::makeScheduler("Unmanaged");
    cluster::EpochSimulator sim(node, cfg);
    const auto res = sim.run(*unmanaged);

    EXPECT_GE(res.slo.raises, 1);
    EXPECT_GT(res.slo.alertEpochs, 0);
    EXPECT_GE(res.slo.worstBurn, cfg.sloTraits.burnThreshold);
    EXPECT_DOUBLE_EQ(metrics.counter("slo.alert_raised"),
                     static_cast<double>(res.slo.raises));
    EXPECT_DOUBLE_EQ(metrics.counter("slo.alert_cleared"),
                     static_cast<double>(res.slo.clears));
    EXPECT_DOUBLE_EQ(metrics.counter("slo.alert_epochs"),
                     static_cast<double>(res.slo.alertEpochs));
}

TEST(SloIntegration, AlertEventsBypassTraceSampling)
{
    // With the sample rate at 0 every epoch-scoped event is
    // dropped, but alert transitions — like `violation` — must
    // still land in the trace.
    cluster::Node node(machine::MachineConfig::xeonE52630v4(),
                       {cluster::lcAt(apps::xapian(), 0.9),
                        cluster::be(apps::stream())});
    obs::BufferTraceSink sink;
    cluster::SimulationConfig cfg = sloConfig(5);
    cfg.obs.sink = &sink;
    cfg.traceSampleRate = 0.0;
    const auto unmanaged = sched::makeScheduler("Unmanaged");
    cluster::EpochSimulator sim(node, cfg);
    const auto res = sim.run(*unmanaged);
    ASSERT_GE(res.slo.raises, 1);

    std::istringstream in(sink.str());
    std::size_t epochs = 0, raises = 0, clears = 0;
    for (const auto &ev : obs::readTrace(in)) {
        if (ev.type() == "epoch")
            ++epochs;
        if (ev.type() == "alert_raise") {
            ++raises;
            EXPECT_FALSE(ev.str("app").empty());
            EXPECT_GE(ev.num("burn_fast"),
                      cfg.sloTraits.burnThreshold);
        }
        if (ev.type() == "alert_clear")
            ++clears;
    }
    EXPECT_EQ(epochs, 0u);
    EXPECT_EQ(raises, static_cast<std::size_t>(res.slo.raises));
    EXPECT_EQ(clears, static_cast<std::size_t>(res.slo.clears));
}

TEST(SloIntegration, DisabledSloLeavesSummaryAndTraceUntouched)
{
    cluster::Node node(machine::MachineConfig::xeonE52630v4(),
                       {cluster::lcAt(apps::xapian(), 0.9),
                        cluster::be(apps::stream())});
    obs::BufferTraceSink sink;
    cluster::SimulationConfig cfg = sloConfig(5);
    cfg.slo = false;
    cfg.obs.sink = &sink;
    const auto unmanaged = sched::makeScheduler("Unmanaged");
    cluster::EpochSimulator sim(node, cfg);
    const auto res = sim.run(*unmanaged);
    EXPECT_EQ(res.slo.raises, 0);
    EXPECT_EQ(res.slo.alertEpochs, 0);
    EXPECT_EQ(sink.str().find("alert_raise"), std::string::npos);
}

} // namespace

/**
 * @file
 * SpanProfiler + obs::Span: hierarchical path building, null-prof
 * no-op, merge commutativity, deterministic flush (wallClock
 * gating), quantiles, and the cross-layer contracts — epoch
 * simulator span counts match the run's epoch count, child wall
 * time never exceeds its parent, ScenarioRunner span-bearing
 * traces stay byte-identical at any pool size, and ThreadPool's
 * diagnostics profiler records pool.task without polluting job
 * hierarchies.
 */

#include <gtest/gtest.h>

#include <future>
#include <thread>

#include "apps/catalog.hh"
#include "cluster/epoch_sim.hh"
#include "exec/scenario_runner.hh"
#include "exec/thread_pool.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "obs/trace_reader.hh"
#include "obs/trace_sink.hh"
#include "sched/registry.hh"

namespace
{

using namespace ahq;
using obs::Span;
using obs::SpanProfiler;

TEST(Span, PathsFollowTheNestingStack)
{
    SpanProfiler prof;
    {
        Span run(&prof, "run");
        for (int i = 0; i < 3; ++i) {
            Span epoch(&prof, "epoch");
            Span decide(&prof, "decide");
        }
    }
    const auto snap = prof.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap.at("run").count, 1u);
    EXPECT_EQ(snap.at("run/epoch").count, 3u);
    EXPECT_EQ(snap.at("run/epoch/decide").count, 3u);
}

TEST(Span, SequentialRootsDoNotNest)
{
    SpanProfiler prof;
    {
        Span a(&prof, "first");
    }
    {
        Span b(&prof, "second");
    }
    const auto snap = prof.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap.count("first"), 1u);
    EXPECT_EQ(snap.count("second"), 1u);
}

TEST(Span, NullProfilerIsANoOp)
{
    // The profiler-off contract: a null prof records nothing and
    // never touches the thread-local stack.
    SpanProfiler prof;
    {
        Span outer(&prof, "outer");
        Span off(static_cast<SpanProfiler *>(nullptr), "ghost");
        Span inner(&prof, "inner");
    }
    const auto snap = prof.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    // "ghost" neither recorded nor inserted into the path.
    EXPECT_EQ(snap.count("outer"), 1u);
    EXPECT_EQ(snap.count("outer/inner"), 1u);
    obs::Scope scope; // default scope: prof == nullptr
    Span viaScope(scope, "also_off");
    EXPECT_FALSE(scope.profiling());
}

TEST(Span, ForeignProfilerStartsAFreshRoot)
{
    // A span targeting a different profiler than the innermost
    // open one must not inherit the foreign prefix — this is what
    // keeps ThreadPool- or Fleet-level profilers out of job
    // hierarchies.
    SpanProfiler outer_prof, inner_prof;
    {
        Span outer(&outer_prof, "outer");
        {
            Span inner(&inner_prof, "inner");
            Span deeper(&inner_prof, "deeper");
        }
        Span back(&outer_prof, "back");
    }
    EXPECT_EQ(inner_prof.snapshot().count("inner"), 1u);
    EXPECT_EQ(inner_prof.snapshot().count("inner/deeper"), 1u);
    const auto outer_snap = outer_prof.snapshot();
    EXPECT_EQ(outer_snap.count("outer"), 1u);
    EXPECT_EQ(outer_snap.count("outer/back"), 1u);
}

TEST(SpanProfiler, MergeIsCommutative)
{
    auto fill = [](SpanProfiler &p, int offset) {
        for (int i = 0; i < 5; ++i) {
            p.record("a", static_cast<std::uint64_t>(
                              100 * (i + offset) + 1));
            p.record("a/b", static_cast<std::uint64_t>(i + 1));
        }
    };
    SpanProfiler p1, p2, left, right;
    fill(p1, 0);
    fill(p2, 7);
    left.merge(p1);
    left.merge(p2);
    right.merge(p2);
    right.merge(p1);

    const auto sl = left.snapshot();
    const auto sr = right.snapshot();
    ASSERT_EQ(sl.size(), sr.size());
    for (const auto &[path, st] : sl) {
        const auto &other = sr.at(path);
        EXPECT_EQ(st.count, other.count);
        EXPECT_EQ(st.totalNs, other.totalNs);
        EXPECT_EQ(st.maxNs, other.maxNs);
        EXPECT_EQ(st.buckets, other.buckets);
    }
}

TEST(SpanProfiler, QuantilesAreDeterministicAndBounded)
{
    SpanProfiler p;
    for (std::uint64_t ns : {10u, 100u, 1000u, 10000u, 100000u})
        p.record("x", ns);
    const auto st = p.snapshot().at("x");
    EXPECT_EQ(st.count, 5u);
    EXPECT_EQ(st.maxNs, 100000u);
    // Quantiles never exceed the observed max and are monotone.
    EXPECT_LE(st.quantileNs(0.5), st.quantileNs(0.99));
    EXPECT_LE(st.quantileNs(0.99), st.maxNs);
    // A single-value distribution: every quantile is that value.
    SpanProfiler single;
    single.record("y", 1000);
    const auto sy = single.snapshot().at("y");
    EXPECT_EQ(sy.quantileNs(0.5), 1000u);
    EXPECT_EQ(sy.quantileNs(0.99), 1000u);
}

TEST(SpanProfiler, FlushWithoutWallClockIsByteDeterministic)
{
    // Same counts, different timings -> identical bytes, because
    // wallClock=false strips every timing field. This is the exact
    // property the sweep/chaos byte-identity contract rides on.
    SpanProfiler fast, slow;
    fast.record("run", 10);
    fast.record("run/epoch", 1);
    fast.record("run/epoch", 2);
    slow.record("run", 99999);
    slow.record("run/epoch", 12345);
    slow.record("run/epoch", 54321);

    auto flushed = [](const SpanProfiler &p) {
        obs::BufferTraceSink sink;
        obs::Scope scope;
        scope.sink = &sink;
        scope.scenario = "t";
        p.flush(scope);
        return sink.str();
    };
    EXPECT_EQ(flushed(fast), flushed(slow));

    // And the events carry the hierarchy fields.
    obs::BufferTraceSink sink;
    obs::Scope scope;
    scope.sink = &sink;
    scope.scenario = "t";
    fast.flush(scope);
    const auto lines = sink.lines();
    ASSERT_EQ(lines.size(), 2u);
    const auto root = obs::parseTraceLine(lines[0]);
    EXPECT_EQ(root.type(), "span");
    EXPECT_EQ(root.str("path"), "run");
    EXPECT_EQ(root.str("name"), "run");
    EXPECT_FALSE(root.has("parent"));
    EXPECT_EQ(root.num("depth"), 0.0);
    EXPECT_EQ(root.num("count"), 1.0);
    EXPECT_FALSE(root.has("total_ms"));
    const auto child = obs::parseTraceLine(lines[1]);
    EXPECT_EQ(child.str("path"), "run/epoch");
    EXPECT_EQ(child.str("name"), "epoch");
    EXPECT_EQ(child.str("parent"), "run");
    EXPECT_EQ(child.num("depth"), 1.0);
    EXPECT_EQ(child.num("count"), 2.0);
}

TEST(SpanProfiler, FlushWithWallClockCarriesTimingFields)
{
    SpanProfiler p;
    p.record("run", 2'000'000); // 2 ms
    p.record("run", 4'000'000); // 4 ms
    obs::BufferTraceSink sink;
    obs::MetricsRegistry metrics;
    obs::Scope scope;
    scope.sink = &sink;
    scope.metrics = &metrics;
    scope.wallClock = true;
    p.flush(scope);

    const auto ev = obs::parseTraceLine(sink.lines().at(0));
    EXPECT_DOUBLE_EQ(ev.num("total_ms"), 6.0);
    EXPECT_DOUBLE_EQ(ev.num("mean_ms"), 3.0);
    EXPECT_DOUBLE_EQ(ev.num("max_ms"), 4.0);
    EXPECT_GT(ev.num("p99_ms"), 0.0);
    // Metrics ride along: a calls counter and a duration histogram.
    EXPECT_DOUBLE_EQ(metrics.counter("prof.run.calls"), 2.0);
    EXPECT_EQ(metrics.histogram("prof.run.ms").total, 2u);
}

TEST(SpanProfiler, EpochSimSpanCountsMatchTheRun)
{
    cluster::Node node(machine::MachineConfig::xeonE52630v4(),
                       {cluster::lcAt(apps::xapian(), 0.5),
                        cluster::be(apps::stream())});
    cluster::SimulationConfig cfg;
    cfg.epochSeconds = 0.5;
    cfg.durationSeconds = 10.0;
    cfg.warmupEpochs = 0;
    SpanProfiler prof;
    cfg.obs.prof = &prof;

    const auto sched = sched::makeScheduler("ARQ");
    cluster::EpochSimulator sim(node, cfg);
    const auto res = sim.run(*sched);

    const auto snap = prof.snapshot();
    ASSERT_EQ(snap.count("run"), 1u);
    EXPECT_EQ(snap.at("run").count, 1u);
    ASSERT_EQ(snap.count("run/epoch"), 1u);
    EXPECT_EQ(snap.at("run/epoch").count, res.epochs.size());
    // Every epoch measures; all but the first decide.
    EXPECT_EQ(snap.at("run/epoch/measure").count,
              res.epochs.size());
    EXPECT_EQ(snap.at("run/epoch/decide").count,
              res.epochs.size() - 1);

    // Wall-time consistency: a child's total can never exceed its
    // parent's (spans are strictly nested).
    for (const auto &[path, st] : snap) {
        const auto slash = path.rfind('/');
        if (slash == std::string::npos)
            continue;
        const auto parent = snap.find(path.substr(0, slash));
        ASSERT_NE(parent, snap.end()) << path;
        EXPECT_LE(st.totalNs, parent->second.totalNs) << path;
    }
}

TEST(SpanProfiler, ProfilingNeverPerturbsResults)
{
    cluster::Node node(machine::MachineConfig::xeonE52630v4(),
                       {cluster::lcAt(apps::xapian(), 0.6),
                        cluster::be(apps::stream())});
    auto run_with = [&](SpanProfiler *prof) {
        cluster::SimulationConfig cfg;
        cfg.epochSeconds = 0.5;
        cfg.durationSeconds = 8.0;
        cfg.warmupEpochs = 0;
        cfg.seed = 7;
        cfg.obs.prof = prof;
        const auto arq = sched::makeScheduler("ARQ");
        cluster::EpochSimulator sim(node, cfg);
        return sim.run(*arq);
    };
    SpanProfiler prof;
    const auto plain = run_with(nullptr);
    const auto profiled = run_with(&prof);
    EXPECT_DOUBLE_EQ(plain.meanES, profiled.meanES);
    EXPECT_DOUBLE_EQ(plain.yieldValue, profiled.yieldValue);
    EXPECT_EQ(plain.violations, profiled.violations);
    EXPECT_FALSE(prof.empty());
}

TEST(SpanProfiler, RunnerTracesAreByteIdenticalAcrossPoolSizes)
{
    // Span events ride the per-job buffers, so a profiled traced
    // batch must produce the same bytes at 1 and 4 workers.
    std::vector<exec::ScenarioJob> jobs;
    cluster::SimulationConfig cfg;
    cfg.epochSeconds = 0.5;
    cfg.durationSeconds = 5.0;
    cfg.warmupEpochs = 0;
    for (int j = 0; j < 4; ++j) {
        cfg.seed = static_cast<std::uint64_t>(j + 1);
        cluster::Node node(
            machine::MachineConfig::xeonE52630v4(),
            {cluster::lcAt(apps::xapian(), 0.2 * (j + 1)),
             cluster::be(apps::stream())});
        jobs.push_back({"ARQ", node, cfg,
                        "job" + std::to_string(j)});
    }

    auto traced = [&](int threads) {
        exec::ThreadPool pool(threads);
        exec::ScenarioRunner runner(&pool);
        obs::BufferTraceSink sink;
        SpanProfiler prof;
        obs::Scope scope;
        scope.sink = &sink;
        scope.prof = &prof; // wallClock stays false
        runner.setObsScope(scope);
        runner.run(jobs);
        EXPECT_FALSE(prof.empty());
        return sink.str();
    };
    const auto serial = traced(1);
    const auto parallel = traced(4);
    EXPECT_EQ(serial, parallel);
    EXPECT_NE(serial.find("\"type\":\"span\""),
              std::string::npos);
}

TEST(ThreadPool, AttachedProfilerCountsDrainedTasks)
{
    exec::ThreadPool pool(2);
    SpanProfiler prof;
    pool.attachProfiler(&prof);
    std::vector<std::future<int>> futs;
    for (int i = 0; i < 8; ++i)
        futs.push_back(pool.submit([i] { return i; }));
    for (auto &f : futs)
        f.get();
    pool.attachProfiler(nullptr);
    const auto snap = prof.snapshot();
    ASSERT_EQ(snap.count("pool.task"), 1u);
    EXPECT_EQ(snap.at("pool.task").count, 8u);
    // Recorded as a root path — never nested under job spans.
    for (const auto &[path, st] : snap)
        EXPECT_EQ(path.find('/'), std::string::npos) << path;
}

} // namespace

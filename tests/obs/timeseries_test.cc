/**
 * @file
 * Tests for the deterministic time-series engine (obs/timeseries),
 * the arena-backed trace-event assembly (obs/alloc), and the seeded
 * head-based trace sampling (cluster/epoch_sim): bucket fold
 * correctness, order-independence, merge commutativity down to the
 * flushed bytes, sampler purity, and the zero-alloc steady state on
 * sampling-rejected epochs — counted, not reviewed.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "apps/catalog.hh"
#include "cluster/epoch_sim.hh"
#include "obs/alloc.hh"
#include "obs/scope.hh"
#include "obs/span.hh"
#include "obs/timeseries.hh"
#include "obs/trace_reader.hh"
#include "obs/trace_sink.hh"
#include "sched/registry.hh"

namespace
{

using namespace ahq;
using obs::TimeSeries;
using obs::TimeSeriesRegistry;

/** Deterministic pseudo-signal (no RNG needed). */
double
signalAt(int e)
{
    return static_cast<double>((e * 37) % 17) * 0.25;
}

void
expectSameState(const TimeSeries &a, const TimeSeries &b)
{
    ASSERT_EQ(a.capacity(), b.capacity());
    EXPECT_EQ(a.stride(), b.stride());
    EXPECT_EQ(a.maxEpoch(), b.maxEpoch());
    EXPECT_EQ(a.points(), b.points());
    ASSERT_EQ(a.bucketsInUse(), b.bucketsInUse());
    for (int i = 0; i < a.bucketsInUse(); ++i) {
        EXPECT_EQ(a.bucket(i).count, b.bucket(i).count) << i;
        EXPECT_EQ(a.bucket(i).sum, b.bucket(i).sum) << i;
        if (a.bucket(i).count > 0) {
            EXPECT_EQ(a.bucket(i).min, b.bucket(i).min) << i;
            EXPECT_EQ(a.bucket(i).max, b.bucket(i).max) << i;
        }
    }
}

TEST(TimeSeries, RecordsIntoStrideOneBuckets)
{
    TimeSeries ts(4);
    ts.record(0, 1.0);
    ts.record(1, 2.0);
    ts.record(1, 4.0);
    ts.record(3, 8.0);

    EXPECT_EQ(ts.stride(), 1);
    EXPECT_EQ(ts.maxEpoch(), 3);
    EXPECT_EQ(ts.bucketsInUse(), 4);
    EXPECT_EQ(ts.points(), 4u);

    EXPECT_EQ(ts.bucket(0).count, 1u);
    EXPECT_EQ(ts.bucket(0).min, 1.0);
    EXPECT_EQ(ts.bucket(0).max, 1.0);
    EXPECT_EQ(ts.bucket(1).count, 2u);
    EXPECT_EQ(ts.bucket(1).min, 2.0);
    EXPECT_EQ(ts.bucket(1).max, 4.0);
    EXPECT_EQ(ts.bucket(1).sum, 6.0);
    EXPECT_EQ(ts.bucket(1).mean(), 3.0);
    EXPECT_EQ(ts.bucket(2).count, 0u);
    EXPECT_EQ(ts.bucket(3).count, 1u);
    EXPECT_EQ(ts.bucket(3).sum, 8.0);

    // Negative epochs are ignored, not folded or counted.
    ts.record(-1, 100.0);
    EXPECT_EQ(ts.points(), 4u);
    EXPECT_EQ(ts.maxEpoch(), 3);
}

TEST(TimeSeries, FoldsOnOverflowDoublingStride)
{
    TimeSeries ts(4);
    for (int e = 0; e < 8; ++e)
        ts.record(e, static_cast<double>(e));

    // 8 epochs into 4 buckets: one fold, two epochs per bucket.
    EXPECT_EQ(ts.stride(), 2);
    EXPECT_EQ(ts.bucketsInUse(), 4);
    EXPECT_EQ(ts.points(), 8u);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(ts.bucket(i).count, 2u) << i;
        EXPECT_EQ(ts.bucket(i).min, 2.0 * i) << i;
        EXPECT_EQ(ts.bucket(i).max, 2.0 * i + 1.0) << i;
        EXPECT_EQ(ts.bucket(i).sum, 4.0 * i + 1.0) << i;
    }

    // A distant epoch folds repeatedly in one record() call.
    ts.record(63, 9.0);
    EXPECT_EQ(ts.stride(), 16);
    EXPECT_EQ(ts.maxEpoch(), 63);
    EXPECT_EQ(ts.bucketsInUse(), 4);
    EXPECT_EQ(ts.bucket(0).count, 8u); // epochs 0..7
    EXPECT_EQ(ts.bucket(3).count, 1u); // epoch 63
    EXPECT_EQ(ts.bucket(3).min, 9.0);
}

TEST(TimeSeries, FinalStateIndependentOfRecordingOrder)
{
    // The fold cascade runs at different moments depending on
    // arrival order; the final state must not care (every bucket
    // aggregate commutes).
    TimeSeries forward(8), reverse(8), interleaved(8);
    const int kEpochs = 64;
    for (int e = 0; e < kEpochs; ++e)
        forward.record(e, signalAt(e));
    for (int e = kEpochs - 1; e >= 0; --e)
        reverse.record(e, signalAt(e));
    for (int e = 0; e < kEpochs; e += 2)
        interleaved.record(e, signalAt(e));
    for (int e = 1; e < kEpochs; e += 2)
        interleaved.record(e, signalAt(e));

    expectSameState(forward, reverse);
    expectSameState(forward, interleaved);
}

TEST(TimeSeries, MergeIsCommutativeAndMatchesDirectRecording)
{
    // a covers few epochs (stride 1), b many (folded): merge must
    // align strides and produce exactly the state direct recording
    // of the union would.
    auto fill = [](TimeSeries &ts, int lo, int hi) {
        for (int e = lo; e < hi; ++e)
            ts.record(e, signalAt(e));
    };
    TimeSeries a(16), b(16), ab(16), ba(16), direct(16);
    fill(a, 0, 20);
    fill(b, 20, 100);
    fill(ab, 0, 20);
    fill(ba, 20, 100);
    fill(direct, 0, 100);

    TimeSeries b_copy(16), a_copy(16);
    fill(b_copy, 20, 100);
    fill(a_copy, 0, 20);
    ab.merge(b_copy); // a ∪ b
    ba.merge(a_copy); // b ∪ a

    expectSameState(ab, ba);
    expectSameState(ab, direct);
}

TEST(TimeSeriesRegistry, FlushEmitsSortedSchemaV1Events)
{
    TimeSeriesRegistry reg(4);
    // Inserted out of sorted order on purpose.
    reg.record("zeta", "e_s", 0, 0.5);
    reg.record("alpha", "e_s", 0, 0.25);
    reg.record("alpha", "e_s", 1, 0.75);
    reg.record("alpha", "a_series", 5, 1.5);

    obs::BufferTraceSink sink;
    obs::MetricsRegistry metrics;
    obs::Scope scope;
    scope.sink = &sink;
    scope.metrics = &metrics;
    reg.flush(scope);

    const auto lines = sink.lines();
    ASSERT_EQ(lines.size(), 3u);

    const auto first = obs::parseTraceLine(lines[0]);
    EXPECT_EQ(first.type(), "series");
    EXPECT_EQ(first.str("scenario"), "alpha");
    EXPECT_EQ(first.str("series"), "a_series");
    const auto second = obs::parseTraceLine(lines[1]);
    EXPECT_EQ(second.str("scenario"), "alpha");
    EXPECT_EQ(second.str("series"), "e_s");
    const auto third = obs::parseTraceLine(lines[2]);
    EXPECT_EQ(third.str("scenario"), "zeta");

    // Field content round-trips: alpha/e_s has two stride-1
    // buckets in use.
    EXPECT_EQ(second.num("stride"), 1.0);
    EXPECT_EQ(second.num("epochs"), 2.0);
    EXPECT_EQ(second.num("capacity"), 4.0);
    EXPECT_EQ(second.num("points"), 2.0);
    EXPECT_EQ(second.nums("n"), (std::vector<double>{1, 1}));
    EXPECT_EQ(second.nums("min"),
              (std::vector<double>{0.25, 0.75}));
    EXPECT_EQ(second.nums("max"),
              (std::vector<double>{0.25, 0.75}));
    EXPECT_EQ(second.nums("sum"),
              (std::vector<double>{0.25, 0.75}));

    // alpha/a_series: epoch 5 past capacity 4 folded to stride 2;
    // empty buckets render as zeros, disambiguated by n.
    EXPECT_EQ(first.num("stride"), 2.0);
    EXPECT_EQ(first.nums("n"),
              (std::vector<double>{0, 0, 1}));
    EXPECT_EQ(first.nums("sum"),
              (std::vector<double>{0, 0, 1.5}));

    EXPECT_EQ(metrics.counter("ts.series"), 3.0);
    EXPECT_EQ(metrics.counter("ts.points"), 4.0);
}

TEST(TimeSeriesRegistry, MergeFlushesByteIdenticalEitherWay)
{
    // Split one run's points across two registries (the per-job
    // shape), merge in both orders, and require byte-identical
    // flushes — the property the serial==parallel contract rests
    // on.
    auto build = [](TimeSeriesRegistry &even,
                    TimeSeriesRegistry &odd) {
        for (int e = 0; e < 200; ++e) {
            (e % 2 == 0 ? even : odd)
                .record("ARQ", "e_s", e, signalAt(e));
            (e % 2 == 0 ? even : odd)
                .record("CLITE", "queue.0.x", e,
                        signalAt(e + 7));
        }
    };
    TimeSeriesRegistry e1(16), o1(16), e2(16), o2(16);
    build(e1, o1);
    build(e2, o2);
    e1.merge(o1); // even ∪ odd
    o2.merge(e2); // odd ∪ even

    auto flushed = [](const TimeSeriesRegistry &reg) {
        obs::BufferTraceSink sink;
        obs::Scope scope;
        scope.sink = &sink;
        reg.flush(scope);
        return sink.str();
    };
    const std::string ab = flushed(e1);
    ASSERT_FALSE(ab.empty());
    EXPECT_EQ(ab, flushed(o2));
}

TEST(EpochTraceSampling, PureSeededDecision)
{
    // Pure function of (seed, epoch, rate): stable across calls.
    for (int e = 0; e < 100; ++e) {
        EXPECT_EQ(cluster::epochTraceSampled(42, e, 0.3),
                  cluster::epochTraceSampled(42, e, 0.3));
    }
    // Boundary rates short-circuit.
    for (int e = 0; e < 100; ++e) {
        EXPECT_TRUE(cluster::epochTraceSampled(42, e, 1.0));
        EXPECT_FALSE(cluster::epochTraceSampled(42, e, 0.0));
    }
    EXPECT_FALSE(cluster::epochTraceSampled(42, -1, 0.5));

    // The kept fraction tracks the rate (seeded, not exact).
    int kept = 0;
    const int kEpochs = 10000;
    for (int e = 0; e < kEpochs; ++e)
        kept += cluster::epochTraceSampled(7, e, 0.3) ? 1 : 0;
    EXPECT_GT(kept, kEpochs * 25 / 100);
    EXPECT_LT(kept, kEpochs * 35 / 100);

    // Different seeds pick different subsets.
    bool differs = false;
    for (int e = 0; e < 100 && !differs; ++e) {
        differs = cluster::epochTraceSampled(1, e, 0.5) !=
            cluster::epochTraceSampled(2, e, 0.5);
    }
    EXPECT_TRUE(differs);
}

cluster::Node
smallNode()
{
    return cluster::Node(
        machine::MachineConfig::xeonE52630v4().withAvailable(6, 12,
                                                             6),
        {cluster::lcAt(apps::xapian(), 0.4),
         cluster::be(apps::stream())});
}

std::size_t
countType(const std::string &trace, const std::string &type)
{
    const std::string needle = "\"type\":\"" + type + "\"";
    std::size_t n = 0;
    for (auto pos = trace.find(needle); pos != std::string::npos;
         pos = trace.find(needle, pos + needle.size()))
        ++n;
    return n;
}

TEST(EpochTraceSampling, SimulatorTraceIsDeterministicSubset)
{
    cluster::SimulationConfig cfg;
    cfg.durationSeconds = 20.0;
    cfg.warmupEpochs = 4;
    cfg.seed = 11;

    const auto node = smallNode();
    auto run_with = [&](double rate) {
        obs::BufferTraceSink sink;
        cluster::SimulationConfig c = cfg;
        c.obs.sink = &sink;
        c.obs.scenario = "s";
        c.traceSampleRate = rate;
        const auto sched = sched::makeScheduler("ARQ");
        cluster::EpochSimulator sim(node, c);
        sim.run(*sched);
        return sink.str();
    };

    const std::string full = run_with(1.0);
    const std::string sampled = run_with(0.4);
    // Seeded decision: re-running reproduces the exact bytes.
    EXPECT_EQ(sampled, run_with(0.4));

    const auto total = countType(full, "epoch");
    const auto kept = countType(sampled, "epoch");
    EXPECT_GT(kept, 0u);
    EXPECT_LT(kept, total);
    // Head gating never drops the run frame.
    EXPECT_EQ(countType(sampled, "run_start"), 1u);
    EXPECT_EQ(countType(sampled, "run_end"), 1u);
    // The sampled run declares its rate; the full run's trace is
    // byte-identical to a build that never heard of sampling.
    EXPECT_NE(sampled.find("\"trace_sample\":0.4"),
              std::string::npos);
    EXPECT_EQ(full.find("trace_sample"), std::string::npos);
}

TEST(Arena, BumpAllocationWithExtendAndRelease)
{
    obs::Arena arena(64);
    char *a = arena.alloc(8);
    std::memcpy(a, "12345678", 8);
    // The bump tip can grow in place.
    EXPECT_TRUE(arena.extend(a, 8, 8));
    std::memcpy(a + 8, "abcdefgh", 8);
    // A non-tip pointer cannot.
    char *b = arena.alloc(4);
    EXPECT_FALSE(arena.extend(a, 16, 4));
    EXPECT_TRUE(arena.extend(b, 4, 4));
    EXPECT_EQ(std::string(a, 16), "12345678abcdefgh");

    // Mark/release reuses the space without freeing blocks.
    const auto cap = arena.capacity();
    const auto mark = arena.mark();
    (void)arena.alloc(1000); // forces more blocks
    EXPECT_GT(arena.capacity(), cap);
    arena.release(mark);
    const auto cap2 = arena.capacity();
    (void)arena.alloc(1000); // replays into the same blocks
    EXPECT_EQ(arena.capacity(), cap2);
}

TEST(ArenaString, GrowsAcrossBlocksKeepingContent)
{
    obs::Arena arena(32);
    obs::ArenaString s(arena, 8);
    std::string expect;
    for (int i = 0; i < 200; ++i) {
        s.push_back(static_cast<char>('a' + i % 26));
        expect.push_back(static_cast<char>('a' + i % 26));
    }
    s += "tail";
    expect += "tail";
    EXPECT_EQ(s.view(), expect);
    EXPECT_EQ(s.size(), expect.size());
}

TEST(Arena, EventAssemblySteadyStateIsAllocFree)
{
    if (!obs::allocCountingEnabled())
        GTEST_SKIP() << "sanitizer build: counting compiled out";

    // The array payloads are built once up front: the production
    // epoch path passes pre-sized vectors, and a brace temporary
    // would charge a heap allocation to the assembly under test.
    const std::vector<double> ret{0.1, 0.2, 0.3};
    const std::vector<std::string> apps{"a", "b"};
    auto assemble = [&] {
        obs::Event ev("epoch");
        ev.num("e_s", 0.5)
            .integer("victim", 3)
            .nums("ret", ret)
            .strs("apps", apps);
        return std::string(ev.render("scenario_tag", 12)).size();
    };
    // Warm-up grows the thread-local arena to this shape's size.
    for (int i = 0; i < 4; ++i)
        ASSERT_GT(assemble(), 0u);

    const auto before = obs::threadAllocCount();
    obs::Event ev("epoch");
    ev.num("e_s", 0.5)
        .integer("victim", 3)
        .nums("ret", ret)
        .strs("apps", apps);
    const auto line = ev.render("scenario_tag", 12);
    EXPECT_FALSE(line.empty());
    EXPECT_EQ(obs::threadAllocCount(), before)
        << "arena-backed event assembly allocated when warm";
}

TEST(EpochTraceSampling, RejectedEpochsAddNoAllocations)
{
    if (!obs::allocCountingEnabled())
        GTEST_SKIP() << "sanitizer build: counting compiled out";

    // The acceptance claim: when sampling rejects an epoch, the
    // epoch loop does the exact same allocation work as a run with
    // tracing off — the muted-scope transition happens once and
    // the rejected steady state assembles nothing. Measured via
    // the span profiler's per-path alloc counters.
    cluster::SimulationConfig cfg;
    cfg.durationSeconds = 20.0;
    cfg.warmupEpochs = 4;
    cfg.seed = 3;

    const auto node = smallNode();
    auto epoch_allocs = [&](bool sampled_out_tracing) {
        obs::SpanProfiler prof;
        obs::BufferTraceSink sink;
        obs::TimeSeriesRegistry reg;
        cluster::SimulationConfig c = cfg;
        c.obs.prof = &prof;
        // Same scenario tag in both arms (a short, SSO-sized one,
        // like production per-job tags): the comparison isolates
        // the sink + registry + sampling gate, nothing else.
        c.obs.scenario = "s";
        if (sampled_out_tracing) {
            c.obs.sink = &sink;
            c.obs.series = &reg;
            c.traceSampleRate = 0.0;
        }
        const auto sched = sched::makeScheduler("ARQ");
        cluster::EpochSimulator sim(node, c);
        sim.run(*sched);
        const auto snap = prof.snapshot();
        return snap.at("run/epoch").allocs;
    };

    // First simulation in a process pays a couple of one-time
    // lazy-init allocations inside epoch spans; warm those up so
    // both measured arms see the same steady state.
    (void)epoch_allocs(false);
    const auto baseline = epoch_allocs(false);
    const auto rejected = epoch_allocs(true);
    EXPECT_EQ(rejected, baseline)
        << "sampling-rejected epochs allocated beyond the "
           "tracing-off baseline";
}

} // namespace

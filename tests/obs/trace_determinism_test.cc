/**
 * @file
 * Trace determinism: the observability layer must not weaken the
 * exec layer's serial==parallel contract. A traced batch writes
 * byte-identical JSONL at 1 and N threads, repeated runs of one
 * fixed-seed simulation produce identical traces, and metric
 * totals match across thread counts.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "apps/catalog.hh"
#include "cluster/epoch_sim.hh"
#include "exec/scenario_runner.hh"
#include "exec/thread_pool.hh"
#include "obs/scope.hh"
#include "obs/trace_reader.hh"
#include "sched/registry.hh"

namespace
{

using namespace ahq;

cluster::SimulationConfig
shortConfig(std::uint64_t seed)
{
    cluster::SimulationConfig c;
    c.durationSeconds = 20.0;
    c.warmupEpochs = 10;
    c.seed = seed;
    return c;
}

std::vector<exec::ScenarioJob>
tracedBatch()
{
    std::vector<exec::ScenarioJob> jobs;
    std::uint64_t seed = 11;
    for (const auto &strategy : {"ARQ", "PARTIES", "CLITE"}) {
        for (double load : {0.3, 0.7}) {
            cluster::Node node(
                machine::MachineConfig::xeonE52630v4(),
                {cluster::lcAt(apps::xapian(), load),
                 cluster::lcAt(apps::moses(), 0.2),
                 cluster::be(apps::stream())});
            jobs.push_back({strategy, node, shortConfig(seed++),
                            std::string(strategy) + "@" +
                                std::to_string(int(load * 100))});
        }
    }
    return jobs;
}

std::string
runTraced(exec::ThreadPool &pool,
          const std::vector<exec::ScenarioJob> &jobs,
          obs::MetricsRegistry *metrics)
{
    obs::BufferTraceSink sink;
    obs::Scope scope;
    scope.sink = &sink;
    scope.metrics = metrics;
    exec::ScenarioRunner runner(&pool);
    runner.setObsScope(scope);
    runner.run(jobs);
    return sink.str();
}

TEST(TraceDeterminism, BatchTraceBytesIdenticalAcrossThreadCounts)
{
    const auto jobs = tracedBatch();
    exec::ThreadPool serial(1);
    exec::ThreadPool parallel(4);

    obs::MetricsRegistry m1, m4;
    const std::string t1 = runTraced(serial, jobs, &m1);
    const std::string t4 = runTraced(parallel, jobs, &m4);

    ASSERT_FALSE(t1.empty());
    EXPECT_EQ(t1, t4); // byte-for-byte

    // Metric totals match too (counters/histograms commute).
    EXPECT_DOUBLE_EQ(m1.counter("exec.scenarios"),
                     double(jobs.size()));
    EXPECT_DOUBLE_EQ(m1.counter("exec.scenarios"),
                     m4.counter("exec.scenarios"));
    EXPECT_DOUBLE_EQ(m1.counter("sim.epochs"),
                     m4.counter("sim.epochs"));
    EXPECT_DOUBLE_EQ(m1.counter("arq.move") + m1.counter("arq.hold") +
                         m1.counter("arq.rollback") +
                         m1.counter("arq.settle"),
                     m4.counter("arq.move") + m4.counter("arq.hold") +
                         m4.counter("arq.rollback") +
                         m4.counter("arq.settle"));
}

TEST(TraceDeterminism, BatchTraceIsOrderedByJobAndParses)
{
    const auto jobs = tracedBatch();
    exec::ThreadPool pool(4);
    obs::BufferTraceSink sink;
    obs::Scope scope;
    scope.sink = &sink;
    exec::ScenarioRunner runner(&pool);
    runner.setObsScope(scope);
    runner.run(jobs);

    // Every line parses and carries the schema version.
    std::istringstream in(sink.str());
    const auto events = obs::readTrace(in);
    ASSERT_FALSE(events.empty());
    for (const auto &ev : events)
        EXPECT_EQ(ev.num("v"), obs::kSchemaVersion);

    // scenario_start events appear in job order, tagged as asked.
    std::vector<std::string> starts;
    for (const auto &ev : events) {
        if (ev.type() == "scenario_start")
            starts.push_back(ev.str("scenario"));
    }
    ASSERT_EQ(starts.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(starts[i], jobs[i].tag);
}

TEST(TraceDeterminism, FixedSeedSimulationTraceIsReproducible)
{
    cluster::Node node(machine::MachineConfig::xeonE52630v4(),
                       {cluster::lcAt(apps::xapian(), 0.5),
                        cluster::lcAt(apps::moses(), 0.2),
                        cluster::be(apps::stream())});

    auto trace_once = [&] {
        obs::BufferTraceSink sink;
        cluster::SimulationConfig cfg = shortConfig(99);
        cfg.obs.sink = &sink;
        cfg.obs.scenario = "golden";
        const auto arq = sched::makeScheduler("ARQ");
        cluster::EpochSimulator sim(node, cfg);
        sim.run(*arq);
        return sink.str();
    };

    const std::string a = trace_once();
    const std::string b = trace_once();
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);

    // The trace tells a complete story: run_start, one epoch event
    // per epoch plus one ARQ decision per epoch after the first
    // (the scheduler reacts to the previous epoch), run_end.
    std::istringstream in(a);
    const auto events = obs::readTrace(in);
    ASSERT_GE(events.size(), 3u);
    EXPECT_EQ(events.front().type(), "run_start");
    EXPECT_EQ(events.back().type(), "run_end");
    std::size_t epochs = 0, decisions = 0;
    for (const auto &ev : events) {
        if (ev.type() == "epoch")
            ++epochs;
        if (ev.type() == "arq_decision")
            ++decisions;
        EXPECT_EQ(ev.str("scenario"), "golden");
    }
    EXPECT_EQ(epochs, std::size_t(
        events.front().num("epochs")));
    EXPECT_EQ(decisions, epochs - 1);
}

TEST(TraceDeterminism, UntracedRunsStayBitwiseEqualToTracedRuns)
{
    // Attaching telemetry must observe, never perturb: the
    // simulation results with and without a sink are identical.
    cluster::Node node(machine::MachineConfig::xeonE52630v4(),
                       {cluster::lcAt(apps::xapian(), 0.6),
                        cluster::be(apps::stream())});

    const auto run_with = [&](obs::TraceSink *sink) {
        cluster::SimulationConfig cfg = shortConfig(7);
        cfg.obs.sink = sink;
        const auto arq = sched::makeScheduler("ARQ");
        cluster::EpochSimulator sim(node, cfg);
        return sim.run(*arq);
    };

    obs::BufferTraceSink sink;
    const auto plain = run_with(nullptr);
    const auto traced = run_with(&sink);
    EXPECT_DOUBLE_EQ(plain.meanES, traced.meanES);
    EXPECT_DOUBLE_EQ(plain.meanELc, traced.meanELc);
    EXPECT_DOUBLE_EQ(plain.meanEBe, traced.meanEBe);
    EXPECT_DOUBLE_EQ(plain.yieldValue, traced.yieldValue);
    EXPECT_EQ(plain.violations, traced.violations);
    EXPECT_FALSE(sink.lines().empty());
}

} // namespace

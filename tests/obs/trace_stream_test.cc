/**
 * @file
 * Streaming TraceReader (forEachTrace / forEachTraceFile): a
 * multi-MB synthetic trace is delivered event by event with
 * correct 1-based line numbers, malformed lines stop the stream
 * with a line-numbered error, and the file variant prefixes the
 * path.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/trace_reader.hh"

namespace
{

using ahq::obs::forEachTrace;
using ahq::obs::forEachTraceFile;
using ahq::obs::TraceEvent;

/** A synthetic JSONL trace of n events, ~130 bytes per line. */
std::string
syntheticTrace(int n)
{
    std::string out;
    out.reserve(static_cast<std::size_t>(n) * 140);
    for (int i = 0; i < n; ++i) {
        out += "{\"v\":1,\"type\":\"epoch\",\"scenario\":\"synth\","
               "\"epoch\":" +
            std::to_string(i) + ",\"e_s\":0." +
            std::to_string(100000 + i % 899999) +
            ",\"apps\":[1,2,3],\"note\":"
            "\"padding-padding-padding-padding\"}\n";
    }
    return out;
}

TEST(TraceStream, StreamsAMultiMegabyteTraceEventByEvent)
{
    constexpr int kEvents = 40000;
    const std::string text = syntheticTrace(kEvents);
    ASSERT_GT(text.size(), 4u * 1024 * 1024) << "not multi-MB";

    std::istringstream in(text);
    long long seen = 0;
    int last_line = 0;
    forEachTrace(in, [&](const TraceEvent &ev, int line) {
        EXPECT_EQ(ev.num("epoch"), static_cast<double>(seen));
        ++seen;
        last_line = line;
    });
    EXPECT_EQ(seen, kEvents);
    EXPECT_EQ(last_line, kEvents); // 1-based, no blank lines
}

TEST(TraceStream, LineNumbersSkipNothingAndCountBlanks)
{
    std::istringstream in(
        "{\"a\":1}\n\n{\"a\":2}\n\n\n{\"a\":3}\n");
    std::vector<int> lines;
    forEachTrace(in, [&](const TraceEvent &, int line) {
        lines.push_back(line);
    });
    EXPECT_EQ(lines, (std::vector<int>{1, 3, 6}));
}

TEST(TraceStream, MalformedMidFileStopsWithLineNumber)
{
    std::istringstream in(
        "{\"a\":1}\n{\"a\":2}\ngarbage here\n{\"a\":4}\n");
    int delivered = 0;
    try {
        forEachTrace(in, [&](const TraceEvent &, int) {
            ++delivered;
        });
        FAIL() << "expected parse error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos)
            << e.what();
    }
    // Everything before the bad line was delivered, nothing after.
    EXPECT_EQ(delivered, 2);
}

TEST(TraceStream, CallbackErrorsCarryTheLineNumber)
{
    std::istringstream in("{\"a\":1}\n{\"a\":2}\n");
    try {
        forEachTrace(in, [&](const TraceEvent &ev, int) {
            if (ev.num("a") == 2.0)
                throw std::runtime_error("rejected by callback");
        });
        FAIL() << "expected callback error";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("line 2"), std::string::npos) << what;
        EXPECT_NE(what.find("rejected by callback"),
                  std::string::npos)
            << what;
    }
}

TEST(TraceStream, FileVariantPrefixesThePath)
{
    const std::string path =
        testing::TempDir() + "ahq_stream_test.jsonl";
    {
        std::ofstream out(path);
        out << "{\"a\":1}\nbroken\n";
    }
    try {
        forEachTraceFile(path, [](const TraceEvent &, int) {});
        FAIL() << "expected parse error";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find(path), std::string::npos) << what;
        EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    }
    std::remove(path.c_str());

    EXPECT_THROW(
        forEachTraceFile("/nonexistent/trace.jsonl",
                         [](const TraceEvent &, int) {}),
        std::runtime_error);
}

TEST(TraceStream, CollectingReadersMatchTheStreamingOnes)
{
    const std::string text = syntheticTrace(100);
    std::istringstream a(text), b(text);
    const auto collected = ahq::obs::readTrace(a);
    std::size_t streamed = 0;
    forEachTrace(b, [&](const TraceEvent &ev, int) {
        ASSERT_LT(streamed, collected.size());
        EXPECT_EQ(ev.num("epoch"),
                  collected[streamed].num("epoch"));
        ++streamed;
    });
    EXPECT_EQ(streamed, collected.size());
}

} // namespace

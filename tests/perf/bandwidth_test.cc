/**
 * @file
 * Tests for the bandwidth contention model.
 */

#include <gtest/gtest.h>

#include "perf/bandwidth.hh"

namespace
{

using ahq::perf::BandwidthModel;
using ahq::perf::BandwidthTraits;

TEST(Bandwidth, NoDilationAtZeroLoad)
{
    BandwidthModel m;
    EXPECT_EQ(m.dilation(0.0), 1.0);
    EXPECT_EQ(m.dilation(-1.0), 1.0);
}

TEST(Bandwidth, DilationMonotoneInUtilization)
{
    BandwidthModel m;
    double prev = 1.0;
    for (double rho = 0.1; rho <= 0.95; rho += 0.05) {
        const double d = m.dilation(rho);
        EXPECT_GE(d, prev);
        prev = d;
    }
}

TEST(Bandwidth, DilationMildAtLowLoadSharpNearSaturation)
{
    BandwidthModel m;
    EXPECT_LT(m.dilation(0.3), 1.15);
    EXPECT_GT(m.dilation(0.95), 2.0);
}

TEST(Bandwidth, DilationCappedBeyondRhoCap)
{
    BandwidthModel m;
    EXPECT_EQ(m.dilation(0.99), m.dilation(5.0));
}

TEST(Bandwidth, DilationRespectsMax)
{
    BandwidthTraits t;
    t.maxDilation = 3.0;
    BandwidthModel m(t);
    EXPECT_LE(m.dilation(0.999), 3.0);
}

TEST(Bandwidth, ZeroKDisablesDilation)
{
    BandwidthTraits t;
    t.contentionK = 0.0;
    BandwidthModel m(t);
    EXPECT_EQ(m.dilation(0.9), 1.0);
}

TEST(Bandwidth, ThroughputScaleOnlyThrottlesExcess)
{
    BandwidthModel m;
    EXPECT_EQ(m.throughputScale(5.0, 10.0), 1.0);
    EXPECT_EQ(m.throughputScale(10.0, 10.0), 1.0);
    EXPECT_NEAR(m.throughputScale(20.0, 10.0), 0.5, 1e-12);
}

} // namespace

/**
 * @file
 * Parameterised property sweeps over the contention model: the
 * invariants that must hold for any (policy, machine, load)
 * combination.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "apps/catalog.hh"
#include "machine/config.hh"
#include "machine/layout.hh"
#include "perf/contention.hh"

namespace
{

using namespace ahq;
using perf::CoreSharePolicy;

using SweepParam =
    std::tuple<int /*policy*/, int /*cores*/, int /*ways*/,
               int /*load_pct*/>;

class ContentionSweep : public ::testing::TestWithParam<SweepParam>
{
  protected:
    CoreSharePolicy
    policy() const
    {
        return std::get<0>(GetParam()) == 0 ?
            CoreSharePolicy::FairShare : CoreSharePolicy::LcPriority;
    }

    machine::MachineConfig
    config() const
    {
        return machine::MachineConfig::xeonE52630v4().withAvailable(
            std::get<1>(GetParam()), std::get<2>(GetParam()), 10);
    }

    double
    load() const
    {
        return std::get<3>(GetParam()) / 100.0;
    }

    std::vector<perf::AppDemand>
    demands() const
    {
        return {apps::xapian().toDemand(load()),
                apps::moses().toDemand(0.2),
                apps::imgDnn().toDemand(0.2),
                apps::stream().toDemand(0.0)};
    }
};

TEST_P(ContentionSweep, InvariantsHoldOnSharedLayout)
{
    const auto mc = config();
    perf::ContentionModel model(mc);
    auto layout = machine::RegionLayout::fullyShared(
        mc.availableResources(), {0, 1, 2, 3});
    const auto d = demands();
    const auto out = model.evaluate(layout, d, policy());

    double ways_sum = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) {
        const auto &o = out[i];
        // Speeds are in (0, 1].
        EXPECT_GT(o.speed, 0.0) << i;
        EXPECT_LE(o.speed, 1.0 + 1e-9) << i;
        // Dilation and stretch at least 1.
        EXPECT_GE(o.bwDilation, 1.0) << i;
        EXPECT_GE(o.serviceStretch, 1.0) << i;
        // Core-equivalents within thread bounds.
        EXPECT_GE(o.coreEquivalents, 0.0) << i;
        EXPECT_LE(o.coreEquivalents,
                  static_cast<double>(d[i].threads) + 1e-9) << i;
        if (d[i].latencyCritical) {
            EXPECT_GT(o.serviceRate, 0.0) << i;
            EXPECT_GT(o.perServerRate, 0.0) << i;
        } else {
            EXPECT_GE(o.ipc, 0.0) << i;
            EXPECT_LE(o.ipc, d[i].ipcSolo * 1.01) << i;
        }
        EXPECT_GE(o.effectiveWays, 0.0) << i;
        EXPECT_GE(o.bwDemandGibps, 0.0) << i;
        ways_sum += o.effectiveWays;
    }
    // Shared ways are partitioned among occupants, never invented.
    EXPECT_LE(ways_sum,
              static_cast<double>(mc.availableLlcWays) + 1.0);
}

TEST_P(ContentionSweep, InvariantsHoldOnArqLayout)
{
    const auto mc = config();
    perf::ContentionModel model(mc);
    auto layout = machine::RegionLayout::arqInitial(
        mc.availableResources(), {0, 1, 2}, {3});
    // Grow app 0's isolated region a little when possible.
    layout.moveResource(machine::ResourceKind::Cores, 0, 1);
    layout.moveResource(machine::ResourceKind::LlcWays, 0, 1);
    const auto d = demands();
    const auto out = model.evaluate(layout, d, policy());
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_GT(out[i].speed, 0.0) << i;
        EXPECT_LE(out[i].speed, 1.0 + 1e-9) << i;
        if (d[i].latencyCritical) {
            EXPECT_GT(out[i].serviceRate, 0.0) << i;
        }
    }
}

TEST_P(ContentionSweep, LcPriorityNeverWorseThanFairShareForLc)
{
    const auto mc = config();
    perf::ContentionModel model(mc);
    auto layout = machine::RegionLayout::fullyShared(
        mc.availableResources(), {0, 1, 2, 3});
    const auto d = demands();
    const auto fair =
        model.evaluate(layout, d, CoreSharePolicy::FairShare);
    const auto pri =
        model.evaluate(layout, d, CoreSharePolicy::LcPriority);
    // Priority shields the LC class from BE work, not from sibling
    // LC apps, so the guarantee is on the class aggregate: total LC
    // capacity at least matches fair sharing, and no LC app suffers
    // timeslice stretching.
    double fair_total = 0.0, pri_total = 0.0;
    for (std::size_t i = 0; i < d.size(); ++i) {
        if (!d[i].latencyCritical)
            continue;
        fair_total += fair[i].serviceRate;
        pri_total += pri[i].serviceRate;
        EXPECT_LE(pri[i].serviceStretch,
                  fair[i].serviceStretch + 1e-9) << i;
    }
    EXPECT_GE(pri_total, fair_total * 0.98);
}

INSTANTIATE_TEST_SUITE_P(
    PolicyMachineLoad, ContentionSweep,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values(4, 6, 10),
                       ::testing::Values(4, 12, 20),
                       ::testing::Values(10, 50, 90)));

TEST(ContentionScaling, BiggerMachineHelpsEveryone)
{
    // The Gold 6248 config (20 cores) must dominate the E5 (10
    // cores) for the same colocation under the same policy.
    const auto small = machine::MachineConfig::xeonE52630v4();
    const auto big = machine::MachineConfig::xeonGold6248();
    ASSERT_TRUE(big.valid());

    const std::vector<perf::AppDemand> d{
        apps::xapian().toDemand(0.7), apps::moses().toDemand(0.4),
        apps::stream().toDemand(0.0)};

    perf::ContentionModel m_small(small), m_big(big);
    auto l_small = machine::RegionLayout::fullyShared(
        small.availableResources(), {0, 1, 2});
    auto l_big = machine::RegionLayout::fullyShared(
        big.availableResources(), {0, 1, 2});
    const auto o_small = m_small.evaluate(
        l_small, d, CoreSharePolicy::LcPriority);
    const auto o_big = m_big.evaluate(
        l_big, d, CoreSharePolicy::LcPriority);
    for (int i = 0; i < 2; ++i) {
        EXPECT_GE(o_big[static_cast<std::size_t>(i)].serviceRate,
                  o_small[static_cast<std::size_t>(i)].serviceRate *
                      0.95) << i;
    }
    EXPECT_GE(o_big[2].ipc, o_small[2].ipc * 0.95);
}

} // namespace

/**
 * @file
 * Tests for the contention model: solo baselines, sharing policies,
 * isolation effects, bandwidth coupling, and determinism.
 */

#include <gtest/gtest.h>

#include "machine/config.hh"
#include "machine/layout.hh"
#include "perf/contention.hh"

namespace
{

using namespace ahq::perf;
using ahq::machine::MachineConfig;
using ahq::machine::Region;
using ahq::machine::RegionLayout;
using ahq::machine::ResourceKind;

AppDemand
lcDemand(double lambda, double svc_ms = 1.0)
{
    AppDemand d;
    d.latencyCritical = true;
    d.arrivalRate = lambda;
    d.serviceTimeMs = svc_ms;
    d.threads = 4;
    d.cpi = CpiModel(MissRateCurve(15.0, 2.0, 5.0), CpiTraits{});
    return d;
}

AppDemand
beDemand(double ipc_solo = 2.0, int threads = 4,
         double mpki_max = 10.0, double mpki_min = 2.0,
         double mlp = 2.0)
{
    AppDemand d;
    d.latencyCritical = false;
    d.ipcSolo = ipc_solo;
    d.threads = threads;
    CpiTraits t;
    t.mlp = mlp;
    d.cpi = CpiModel(MissRateCurve(mpki_max, mpki_min, 4.0), t);
    return d;
}

ContentionModel
makeModel()
{
    return ContentionModel(MachineConfig::xeonE52630v4());
}

TEST(Contention, SoloLcOnFullMachineRunsAtFullSpeed)
{
    const auto model = makeModel();
    auto layout = RegionLayout::fullyShared({10, 20, 10}, {0});
    const auto out = model.evaluate(layout, {lcDemand(500.0)},
                                    CoreSharePolicy::LcPriority);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NEAR(out[0].speed, 1.0, 0.02);
    EXPECT_NEAR(out[0].coreEquivalents, 4.0, 1e-6);
    EXPECT_EQ(out[0].serviceStretch, 1.0);
    EXPECT_NEAR(out[0].effectiveWays, 20.0, 0.5);
    // Capacity near threads / service time, less the shared-core
    // pollution penalty.
    EXPECT_GT(out[0].serviceRate, 3000.0);
    EXPECT_LE(out[0].serviceRate, 4000.0);
}

TEST(Contention, IsolatedLcAvoidsSharedPenalty)
{
    const auto model = makeModel();
    // Fully isolated 4 cores vs the same 4 cores in a shared region
    // with nobody else: isolation should yield strictly more
    // capacity because shared cores pay the pollution penalty.
    RegionLayout iso({10, 20, 10});
    Region r;
    r.name = "iso";
    r.shared = false;
    r.members = {0};
    r.res = {4, 20, 10};
    iso.addRegion(std::move(r));

    RegionLayout shared({4, 20, 10});
    Region s;
    s.name = "sh";
    s.shared = true;
    s.members = {0};
    s.res = {4, 20, 10};
    shared.addRegion(std::move(s));

    const auto demands = std::vector<AppDemand>{lcDemand(1000.0)};
    const auto o_iso = model.evaluate(iso, demands,
                                      CoreSharePolicy::LcPriority);
    const auto o_sh = model.evaluate(shared, demands,
                                     CoreSharePolicy::LcPriority);
    EXPECT_GT(o_iso[0].serviceRate, o_sh[0].serviceRate * 1.05);
}

TEST(Contention, LcPriorityShieldsLcFromBe)
{
    const auto model = makeModel();
    auto layout = RegionLayout::fullyShared({10, 20, 10}, {0, 1});
    const std::vector<AppDemand> demands{lcDemand(800.0),
                                         beDemand(2.0, 10)};
    const auto pri = model.evaluate(layout, demands,
                                    CoreSharePolicy::LcPriority);
    const auto fair = model.evaluate(layout, demands,
                                     CoreSharePolicy::FairShare);
    // Under priority the LC app keeps its full burst capacity and no
    // timeslice stretch; under fair share with 10 BE threads the
    // region is oversubscribed.
    EXPECT_EQ(pri[0].serviceStretch, 1.0);
    EXPECT_GT(fair[0].serviceStretch, 1.0);
    EXPECT_GE(pri[0].serviceRate, fair[0].serviceRate);
}

TEST(Contention, FairShareOversubscriptionStretches)
{
    const auto model =
        ContentionModel(MachineConfig::xeonE52630v4()
                            .withAvailable(6, 20, 10));
    auto layout = RegionLayout::fullyShared({6, 20, 10},
                                            {0, 1, 2, 3});
    // Three loaded LC apps + one BE app on six cores (the Table II
    // configuration).
    const std::vector<AppDemand> demands{
        lcDemand(700.0), lcDemand(400.0, 1.8), lcDemand(1000.0, 0.6),
        beDemand(2.6, 4)};
    const auto out = model.evaluate(layout, demands,
                                    CoreSharePolicy::FairShare);
    for (int i = 0; i < 3; ++i)
        EXPECT_GT(out[i].serviceStretch, 1.0) << "app " << i;
}

TEST(Contention, BeIpcScalesWithCores)
{
    const auto model = makeModel();
    double prev_ipc = 0.0;
    for (int cores = 1; cores <= 4; ++cores) {
        RegionLayout l({10, 20, 10});
        Region r;
        r.name = "be";
        r.shared = true;
        r.members = {0};
        r.res = {cores, 20, 10};
        l.addRegion(std::move(r));
        const auto out = model.evaluate(l, {beDemand(2.0, 4)},
                                        CoreSharePolicy::FairShare);
        EXPECT_GT(out[0].ipc, prev_ipc);
        prev_ipc = out[0].ipc;
    }
    // With all 4 threads backed by cores and the full cache, the BE
    // app reaches its solo IPC.
    EXPECT_NEAR(prev_ipc, 2.0, 0.1);
}

TEST(Contention, BeIpcScalesWithWays)
{
    const auto model = makeModel();
    double prev_ipc = 0.0;
    for (int ways : {2, 5, 10, 20}) {
        RegionLayout l({10, 20, 10});
        Region r;
        r.name = "be";
        r.shared = true;
        r.members = {0};
        r.res = {4, ways, 10};
        l.addRegion(std::move(r));
        const auto out = model.evaluate(
            l, {beDemand(2.0, 4, 30.0, 5.0)},
            CoreSharePolicy::FairShare);
        EXPECT_GT(out[0].ipc, prev_ipc);
        prev_ipc = out[0].ipc;
    }
}

TEST(Contention, BandwidthHogDilatesCorunner)
{
    const auto model = makeModel();
    // A cache-sensitive app isolated from a STREAM-like hog still
    // shares the memory bus.
    RegionLayout l({10, 20, 10});
    Region a;
    a.name = "victim";
    a.shared = false;
    a.members = {0};
    a.res = {4, 10, 5};
    l.addRegion(std::move(a));
    Region b;
    b.name = "hog";
    b.shared = true;
    b.members = {1};
    b.res = {6, 10, 5};
    l.addRegion(std::move(b));

    const std::vector<AppDemand> with_hog{
        lcDemand(500.0), beDemand(0.9, 10, 60.0, 56.0, 8.0)};
    const std::vector<AppDemand> idle_hog{
        lcDemand(500.0), beDemand(0.9, 1, 1.0, 0.5, 1.0)};
    const auto o1 = model.evaluate(l, with_hog,
                                   CoreSharePolicy::LcPriority);
    const auto o2 = model.evaluate(l, idle_hog,
                                   CoreSharePolicy::LcPriority);
    EXPECT_GT(o1[0].bwDilation, o2[0].bwDilation);
    EXPECT_LT(o1[0].speed, o2[0].speed);
}

TEST(Contention, SharedWaysStolenByIntensity)
{
    const auto model = makeModel();
    auto layout = RegionLayout::fullyShared({10, 20, 10}, {0, 1});
    // A cache-hungry BE app against a flat-MRC streaming app: the
    // hungry one should end up with more effective ways.
    const std::vector<AppDemand> demands{
        beDemand(1.3, 4, 32.0, 6.0),       // cache hungry
        beDemand(0.9, 4, 60.0, 56.0, 8.0), // streaming
    };
    const auto out = model.evaluate(layout, demands,
                                    CoreSharePolicy::FairShare);
    EXPECT_GT(out[0].effectiveWays, out[1].effectiveWays);
    EXPECT_NEAR(out[0].effectiveWays + out[1].effectiveWays, 20.0,
                1.0);
}

TEST(Contention, UtilizationReported)
{
    const auto model = makeModel();
    auto layout = RegionLayout::fullyShared({10, 20, 10}, {0});
    const auto out = model.evaluate(layout, {lcDemand(1000.0)},
                                    CoreSharePolicy::LcPriority);
    EXPECT_NEAR(out[0].utilization,
                1000.0 / out[0].serviceRate, 1e-9);
}

TEST(Contention, Deterministic)
{
    const auto model = makeModel();
    auto layout = RegionLayout::arqInitial({10, 20, 10}, {0, 1}, {2});
    const std::vector<AppDemand> demands{
        lcDemand(800.0), lcDemand(300.0, 1.8), beDemand(2.0, 10)};
    const auto a = model.evaluate(layout, demands,
                                  CoreSharePolicy::LcPriority);
    const auto b = model.evaluate(layout, demands,
                                  CoreSharePolicy::LcPriority);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].speed, b[i].speed);
        EXPECT_EQ(a[i].serviceRate, b[i].serviceRate);
        EXPECT_EQ(a[i].ipc, b[i].ipc);
        EXPECT_EQ(a[i].effectiveWays, b[i].effectiveWays);
    }
}

TEST(Contention, MoreMachineWaysNeverHurtLc)
{
    const auto model = makeModel();
    double prev_rate = 0.0;
    for (int ways : {4, 8, 12, 16, 20}) {
        auto layout = RegionLayout::fullyShared({10, ways, 10}, {0});
        const auto out = model.evaluate(layout, {lcDemand(1500.0)},
                                        CoreSharePolicy::LcPriority);
        EXPECT_GE(out[0].serviceRate, prev_rate * 0.999);
        prev_rate = out[0].serviceRate;
    }
}

TEST(Contention, OverloadedLcRationedInSharedRegion)
{
    // Two LC apps that together demand more than the shared cores:
    // both get rationed, neither starves completely.
    const auto model =
        ContentionModel(MachineConfig::xeonE52630v4()
                            .withAvailable(4, 20, 10));
    auto layout = RegionLayout::fullyShared({4, 20, 10}, {0, 1});
    const std::vector<AppDemand> demands{
        lcDemand(4000.0), lcDemand(4000.0)};
    const auto out = model.evaluate(layout, demands,
                                    CoreSharePolicy::LcPriority);
    EXPECT_GT(out[0].coreEquivalents, 0.5);
    EXPECT_GT(out[1].coreEquivalents, 0.5);
    EXPECT_GT(out[0].utilization, 1.0); // overloaded
    EXPECT_LE(out[0].coreEquivalents + out[1].coreEquivalents,
              4.0 + 1e-6);
}

} // namespace

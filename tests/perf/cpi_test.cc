/**
 * @file
 * Tests for the CPI model.
 */

#include <gtest/gtest.h>

#include "perf/cpi.hh"

namespace
{

using ahq::perf::CpiModel;
using ahq::perf::CpiTraits;
using ahq::perf::MissRateCurve;

CpiModel
model(double mlp = 2.0)
{
    CpiTraits t;
    t.cpiBase = 0.6;
    t.missPenaltyCycles = 180.0;
    t.mlp = mlp;
    t.coreFreqGhz = 2.2;
    return CpiModel(MissRateCurve(20.0, 2.0, 5.0), t);
}

TEST(CpiModel, CpiDecomposition)
{
    const CpiModel m = model();
    // cpi = base + mpki/1000 * penalty/mlp * dilation
    const double expected =
        0.6 + 11.0 / 1000.0 * (180.0 / 2.0) * 1.0;
    EXPECT_NEAR(m.cpi(5.0, 1.0), expected, 1e-12);
}

TEST(CpiModel, MoreWaysLowerCpi)
{
    const CpiModel m = model();
    EXPECT_LT(m.cpi(15.0, 1.0), m.cpi(5.0, 1.0));
}

TEST(CpiModel, DilationRaisesCpi)
{
    const CpiModel m = model();
    EXPECT_GT(m.cpi(10.0, 2.0), m.cpi(10.0, 1.0));
}

TEST(CpiModel, SpeedIsOneAtIdeal)
{
    const CpiModel m = model();
    EXPECT_NEAR(m.speed(20.0, 1.0, 20.0), 1.0, 1e-12);
}

TEST(CpiModel, SpeedBelowOneUnderPressure)
{
    const CpiModel m = model();
    const double s = m.speed(4.0, 1.5, 20.0);
    EXPECT_GT(s, 0.0);
    EXPECT_LT(s, 1.0);
}

TEST(CpiModel, SpeedMonotoneInWays)
{
    const CpiModel m = model();
    double prev = 0.0;
    for (double w = 1.0; w <= 20.0; w += 1.0) {
        const double s = m.speed(w, 1.0, 20.0);
        EXPECT_GT(s, prev);
        prev = s;
    }
}

TEST(CpiModel, HighMlpShieldsCpiButNotBandwidth)
{
    const CpiModel low = model(1.0);
    const CpiModel high = model(8.0);
    // Same miss rate, but high MLP hides latency...
    EXPECT_LT(high.cpi(5.0, 1.0), low.cpi(5.0, 1.0));
    // ...and therefore produces MORE bandwidth demand per core
    // (faster execution, same misses per instruction).
    EXPECT_GT(high.bwDemandPerCore(5.0, 1.0),
              low.bwDemandPerCore(5.0, 1.0));
}

TEST(CpiModel, BandwidthDemandPositiveAndSane)
{
    const CpiModel m = model();
    const double bw = m.bwDemandPerCore(5.0, 1.0);
    // 2.2 GHz core with ~11 MPKI: O(1) GiB/s, definitely < 100.
    EXPECT_GT(bw, 0.1);
    EXPECT_LT(bw, 100.0);
}

TEST(CpiModel, BandwidthDemandFallsWithDilation)
{
    // A dilated memory system slows the core, which lowers its
    // bandwidth demand (negative feedback for the fixed point).
    const CpiModel m = model();
    EXPECT_LT(m.bwDemandPerCore(5.0, 3.0), m.bwDemandPerCore(5.0, 1.0));
}

} // namespace

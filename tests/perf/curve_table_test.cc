/**
 * @file
 * Property tests for the dense contention-curve tables and the
 * exact-key evaluation memo — the two caching layers the epoch hot
 * path relies on being *bitwise* transparent.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "perf/contention_cache.hh"
#include "perf/cpi.hh"
#include "perf/curve_table.hh"

namespace
{

using ahq::perf::AppCurveTable;
using ahq::perf::CpiModel;
using ahq::perf::CpiTraits;
using ahq::perf::EvaluationMemo;
using ahq::perf::MissRateCurve;

CpiModel
model(double mpki_max, double mpki_min, double half_ways,
      double mlp)
{
    CpiTraits t;
    t.cpiBase = 0.6;
    t.missPenaltyCycles = 180.0;
    t.mlp = mlp;
    t.coreFreqGhz = 2.2;
    return CpiModel(MissRateCurve(mpki_max, mpki_min, half_ways),
                    t);
}

/** A few distinct shapes: cache-hungry, streaming, flat. */
std::vector<CpiModel>
models()
{
    return {model(20.0, 2.0, 5.0, 2.0), model(30.0, 25.0, 8.0, 8.0),
            model(1.0, 0.5, 2.0, 1.0), model(40.0, 8.0, 12.0, 4.0)};
}

// The tentpole contract: at every point of the integer way lattice
// the table reproduces the direct CpiModel / MissRateCurve
// evaluation bit-for-bit, for every accessor, across the dilation
// range the fixed point visits. EXPECT_EQ on doubles is exact.
TEST(AppCurveTable, LatticeEvaluationsAreBitwiseIdentical)
{
    const std::vector<double> dilations{1.0, 1.25, 1.5, 2.0, 3.7};
    for (const int max_ways : {1, 11, 20}) {
        for (const CpiModel &m : models()) {
            const AppCurveTable tab(m, max_ways);
            EXPECT_EQ(tab.cpiIdeal(),
                      m.cpiIdeal(static_cast<double>(max_ways)));
            for (int w = 0; w <= max_ways; ++w) {
                const auto ways = static_cast<double>(w);
                EXPECT_EQ(tab.mpki(ways), m.mrc().mpki(ways));
                EXPECT_EQ(tab.accessIntensity(ways),
                          m.mrc().accessIntensity(ways));
                for (const double d : dilations) {
                    EXPECT_EQ(tab.cpi(ways, d), m.cpi(ways, d));
                    EXPECT_EQ(
                        tab.speed(ways, d),
                        m.speed(ways, d,
                                static_cast<double>(max_ways)));
                    EXPECT_EQ(tab.bwDemandPerCore(ways, d),
                              m.bwDemandPerCore(ways, d));
                }
            }
        }
    }
}

// Between lattice points the table interpolates linearly: the value
// lies within the endpoint interval and hits the analytic lerp of
// the endpoints.
TEST(AppCurveTable, FractionalWaysInterpolateBetweenLatticePoints)
{
    const CpiModel m = models()[1];
    const AppCurveTable tab(m, 20);
    for (double ways = 0.25; ways < 20.0; ways += 0.5) {
        const double lo = std::floor(ways);
        const double frac = ways - lo;
        const double a = m.mrc().mpki(lo);
        const double b = m.mrc().mpki(lo + 1.0);
        EXPECT_DOUBLE_EQ(tab.mpki(ways), a + frac * (b - a));
        EXPECT_LE(tab.mpki(ways), std::max(a, b));
        EXPECT_GE(tab.mpki(ways), std::min(a, b));
    }
}

// Way counts outside the lattice clamp to its ends — the same
// saturation the analytic curve exhibits at its extremes.
TEST(AppCurveTable, OutOfRangeWaysClampToLatticeEnds)
{
    const CpiModel m = models()[0];
    const AppCurveTable tab(m, 20);
    EXPECT_EQ(tab.mpki(-3.0), tab.mpki(0.0));
    EXPECT_EQ(tab.mpki(25.0), tab.mpki(20.0));
    EXPECT_EQ(tab.accessIntensity(-1.0), tab.accessIntensity(0.0));
    EXPECT_EQ(tab.accessIntensity(99.0),
              tab.accessIntensity(20.0));
}

TEST(EvaluationMemo, HitReturnsStoredOutcomesExactly)
{
    EvaluationMemo<double> memo(8);
    const std::vector<double> key{1.0, 2.5, -0.0, 3e18};
    const std::vector<double> out{0.25, 0.75, 1.0};

    EXPECT_EQ(memo.find(key), nullptr);
    memo.store(key, out);
    const std::vector<double> *hit = memo.find(key);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(*hit, out);
    EXPECT_EQ(memo.hits(), 1u);
    EXPECT_EQ(memo.misses(), 1u);
}

// Any single-element perturbation of the key — including ones that
// collide under a weaker hash, like swapped elements — must miss:
// the memo may only ever short-circuit exact re-evaluations.
TEST(EvaluationMemo, PerturbedKeysMiss)
{
    EvaluationMemo<double> memo(8);
    const std::vector<double> key{4.0, 8.0, 15.0, 16.0};
    ASSERT_EQ(memo.find(key), nullptr); // stage the key's hash
    memo.store(key, {1.0});
    ASSERT_NE(memo.find(key), nullptr);

    for (std::size_t i = 0; i < key.size(); ++i) {
        std::vector<double> tweaked = key;
        tweaked[i] += 1e-9;
        EXPECT_EQ(memo.find(tweaked), nullptr) << i;
    }
    std::vector<double> swapped{8.0, 4.0, 15.0, 16.0};
    EXPECT_EQ(memo.find(swapped), nullptr);
    std::vector<double> shorter{4.0, 8.0, 15.0};
    EXPECT_EQ(memo.find(shorter), nullptr);
}

TEST(EvaluationMemo, ClearsWhenFullInsteadOfGrowing)
{
    EvaluationMemo<int> memo(2);
    ASSERT_EQ(memo.find({1.0}), nullptr);
    memo.store({1.0}, {1});
    ASSERT_EQ(memo.find({2.0}), nullptr);
    memo.store({2.0}, {2});
    ASSERT_NE(memo.find({1.0}), nullptr);
    ASSERT_NE(memo.find({2.0}), nullptr);

    // The third store clears the full table first: the old keys are
    // gone, the new one is present.
    ASSERT_EQ(memo.find({3.0}), nullptr);
    memo.store({3.0}, {3});
    EXPECT_EQ(memo.find({1.0}), nullptr);
    EXPECT_EQ(memo.find({2.0}), nullptr);
    EXPECT_NE(memo.find({3.0}), nullptr);
}

TEST(EvaluationMemo, ZeroCapacityDisablesCaching)
{
    EvaluationMemo<int> memo(0);
    memo.store({1.0}, {1});
    EXPECT_EQ(memo.find({1.0}), nullptr);
    EXPECT_EQ(memo.hits(), 0u);
    // A disabled memo does not even count traffic.
    EXPECT_EQ(memo.misses(), 0u);
}

} // namespace

/**
 * @file
 * Tests for MRC fitting.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "perf/cpi.hh"
#include "perf/mrc_fit.hh"
#include "stats/rng.hh"

namespace
{

using namespace ahq::perf;

std::vector<MrcSample>
sampleCurve(const MissRateCurve &mrc, double noise_sigma,
            ahq::stats::Rng *rng)
{
    std::vector<MrcSample> s;
    for (double w : {1.0, 2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 20.0}) {
        double y = mrc.mpki(w);
        if (rng)
            y *= rng->lognormalNoise(noise_sigma);
        s.emplace_back(w, y);
    }
    return s;
}

TEST(MrcFit, RecoversExactCurve)
{
    const MissRateCurve truth(24.0, 3.0, 5.0);
    const auto fit =
        fitMissRateCurve(sampleCurve(truth, 0.0, nullptr));
    EXPECT_LT(fit.rmse, 1e-6);
    EXPECT_NEAR(fit.curve.mpkiMax(), 24.0, 0.05);
    EXPECT_NEAR(fit.curve.mpkiMin(), 3.0, 0.05);
    EXPECT_NEAR(fit.curve.waysHalf(), 5.0, 0.1);
}

TEST(MrcFit, RobustToMeasurementNoise)
{
    const MissRateCurve truth(30.0, 5.0, 8.0);
    ahq::stats::Rng rng(17);
    const auto fit =
        fitMissRateCurve(sampleCurve(truth, 0.05, &rng));
    // The fitted curve tracks the truth within ~15% everywhere.
    for (double w = 1.0; w <= 20.0; w += 1.0) {
        EXPECT_NEAR(fit.curve.mpki(w) / truth.mpki(w), 1.0, 0.15)
            << "at " << w << " ways";
    }
}

TEST(MrcFit, FlatCurveFitsFlat)
{
    // A streaming workload: MPKI barely depends on ways.
    std::vector<MrcSample> s{{1, 58.0}, {4, 57.5}, {8, 57.2},
                             {16, 57.0}};
    const auto fit = fitMissRateCurve(s);
    EXPECT_LT(fit.curve.mpkiMax() - fit.curve.mpkiMin(), 4.0);
    EXPECT_NEAR(fit.curve.mpki(8.0), 57.2, 1.0);
}

TEST(MrcFit, RejectsDegenerateInput)
{
    EXPECT_THROW((void)fitMissRateCurve({{1, 5}, {2, 4}}),
                 std::invalid_argument);
    EXPECT_THROW((void)fitMissRateCurve({{1, 5}, {1, 4}, {1, 3}}),
                 std::invalid_argument);
    EXPECT_THROW((void)fitMissRateCurve({{1, -5}, {2, 4}, {3, 3}}),
                 std::invalid_argument);
}

TEST(MrcFit, FittedCurveUsableInCpiModel)
{
    const MissRateCurve truth(20.0, 2.0, 6.0);
    const auto fit =
        fitMissRateCurve(sampleCurve(truth, 0.0, nullptr));
    CpiModel model(fit.curve, CpiTraits{});
    EXPECT_GT(model.speed(2.0, 1.0, 20.0), 0.0);
    EXPECT_LT(model.speed(2.0, 1.0, 20.0), 1.0);
}

} // namespace

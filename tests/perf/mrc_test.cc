/**
 * @file
 * Tests for miss-rate curves.
 */

#include <gtest/gtest.h>

#include "perf/mrc.hh"

namespace
{

using ahq::perf::MissRateCurve;

TEST(MissRateCurve, BoundsAndLimits)
{
    MissRateCurve mrc(20.0, 2.0, 5.0);
    // At zero ways, all reducible misses present.
    EXPECT_NEAR(mrc.mpki(0.0), 20.0, 1e-12);
    // Asymptotically approaches the floor.
    EXPECT_NEAR(mrc.mpki(1e9), 2.0, 1e-3);
    // At the half-saturation point, half the reducible misses left.
    EXPECT_NEAR(mrc.mpki(5.0), 2.0 + 9.0, 1e-12);
}

TEST(MissRateCurve, MonotoneDecreasing)
{
    MissRateCurve mrc(30.0, 5.0, 8.0);
    double prev = mrc.mpki(0.0);
    for (double w = 0.5; w <= 40.0; w += 0.5) {
        const double cur = mrc.mpki(w);
        EXPECT_LE(cur, prev);
        prev = cur;
    }
}

TEST(MissRateCurve, ConvexInWays)
{
    MissRateCurve mrc(30.0, 5.0, 8.0);
    // Second difference non-negative for a convex curve.
    for (double w = 1.0; w <= 30.0; w += 1.0) {
        const double d2 = mrc.mpki(w + 1) - 2 * mrc.mpki(w) +
            mrc.mpki(w - 1);
        EXPECT_GE(d2, -1e-9);
    }
}

TEST(MissRateCurve, NegativeWaysClampedToZero)
{
    MissRateCurve mrc(10.0, 1.0, 2.0);
    EXPECT_EQ(mrc.mpki(-3.0), mrc.mpki(0.0));
}

TEST(MissRateCurve, FlatCurveHasTinyIntensity)
{
    // A streaming workload with no reuse competes for almost no ways.
    MissRateCurve stream(60.0, 56.0, 2.0);
    MissRateCurve hungry(30.0, 5.0, 8.0);
    EXPECT_LT(stream.accessIntensity(10.0),
              hungry.accessIntensity(10.0));
}

TEST(MissRateCurve, IntensityDecreasesWithAllocation)
{
    MissRateCurve mrc(30.0, 5.0, 8.0);
    EXPECT_GT(mrc.accessIntensity(2.0), mrc.accessIntensity(10.0));
}

TEST(MissRateCurve, IntensityHasFloor)
{
    MissRateCurve mrc(5.0, 5.0, 2.0); // fully flat
    EXPECT_GE(mrc.accessIntensity(100.0), 0.05);
}

TEST(MissRateCurve, AccessorsRoundTrip)
{
    MissRateCurve mrc(12.0, 3.0, 4.0);
    EXPECT_EQ(mrc.mpkiMax(), 12.0);
    EXPECT_EQ(mrc.mpkiMin(), 3.0);
    EXPECT_EQ(mrc.waysHalf(), 4.0);
}

} // namespace

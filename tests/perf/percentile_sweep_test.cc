/**
 * @file
 * Parameterised sweeps over the queueing percentile machinery: the
 * exact and approximate sojourn percentiles across percentile
 * levels, loads and server counts.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "perf/queueing.hh"

namespace
{

using namespace ahq::perf;

class PercentileSweep
    : public ::testing::TestWithParam<
          std::tuple<double /*p*/, double /*rho*/, double /*c*/>>
{
};

TEST_P(PercentileSweep, ExactPercentileWellBehaved)
{
    const auto [p, rho, c] = GetParam();
    const double mu = 1.0;
    const double lambda = rho * c * mu;
    const double t = mmcSojournPercentile(c, lambda, mu, p);
    ASSERT_TRUE(std::isfinite(t));
    // Never below the same percentile of the bare service time.
    const double svc_only = -std::log(1.0 - p) / mu;
    EXPECT_GE(t, svc_only * 0.999);
    // And never below the mean sojourn for high percentiles.
    if (p >= 0.9) {
        EXPECT_GE(t, mmcMeanSojourn(c, lambda, mu) * 0.8);
    }
}

TEST_P(PercentileSweep, MonotoneInPercentile)
{
    const auto [p, rho, c] = GetParam();
    const double mu = 1.0;
    const double lambda = rho * c * mu;
    const double t_lo = mmcSojournPercentile(c, lambda, mu, p);
    const double t_hi =
        mmcSojournPercentile(c, lambda, mu,
                             std::min(0.999, p + 0.04));
    EXPECT_GE(t_hi, t_lo);
}

TEST_P(PercentileSweep, ApproximationTracksExact)
{
    const auto [p, rho, c] = GetParam();
    // The decomposition T_p ~ S_p + W_p is a *tail* approximation:
    // it is only advertised (and used by the simulator) for p >= 0.9.
    if (p < 0.9)
        GTEST_SKIP() << "approximation is tail-only";
    const double mu = 1.0;
    const double lambda = rho * c * mu;
    const double exact = mmcSojournPercentile(c, lambda, mu, p);
    const double approx = sojournPercentileApprox(
        c, lambda, mu, -std::log(1.0 - p), p);
    // The approximation is conservative (sums the component
    // percentiles): never more than ~50% above, never below 75%.
    EXPECT_GE(approx / exact, 0.75)
        << "p=" << p << " rho=" << rho << " c=" << c;
    EXPECT_LE(approx / exact, 1.55)
        << "p=" << p << " rho=" << rho << " c=" << c;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PercentileSweep,
    ::testing::Combine(::testing::Values(0.5, 0.9, 0.95, 0.99),
                       ::testing::Values(0.2, 0.5, 0.8),
                       ::testing::Values(1.0, 2.0, 4.0, 8.0)));

TEST(PercentileSweep, TailMassConsistency)
{
    // The p-percentile at probability p must bracket the
    // distribution: evaluating the complementary percentile of a
    // lower p gives a smaller value.
    const double mu = 1.0, lambda = 1.5, c = 2.0;
    double prev = 0.0;
    for (double p = 0.05; p < 0.995; p += 0.05) {
        const double t = mmcSojournPercentile(c, lambda, mu, p);
        EXPECT_GT(t, prev);
        prev = t;
    }
}

} // namespace

/**
 * @file
 * Tests for the M/M/c queueing formulas, including closed-form
 * checks against the M/M/1 special case.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "perf/queueing.hh"

namespace
{

using namespace ahq::perf;

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(ErlangB, KnownValues)
{
    // B(0, a) = 1, B(1, a) = a / (1 + a).
    EXPECT_NEAR(erlangB(0, 2.0), 1.0, 1e-12);
    EXPECT_NEAR(erlangB(1, 2.0), 2.0 / 3.0, 1e-12);
    // Standard reference value: B(5, 3) ~= 0.11005.
    EXPECT_NEAR(erlangB(5, 3.0), 0.11005, 1e-4);
}

TEST(ErlangC, MM1EqualsUtilization)
{
    // For c = 1, P(wait) = rho.
    for (double rho : {0.1, 0.5, 0.9}) {
        EXPECT_NEAR(erlangC(1.0, rho, 1.0), rho, 1e-12);
    }
}

TEST(ErlangC, SaturationGivesOne)
{
    EXPECT_EQ(erlangC(2.0, 2.0, 1.0), 1.0);
    EXPECT_EQ(erlangC(2.0, 3.0, 1.0), 1.0);
}

TEST(ErlangC, DecreasesWithServers)
{
    const double lambda = 2.0, mu = 1.0;
    double prev = 1.0;
    for (double c = 3.0; c <= 10.0; c += 1.0) {
        const double pc = erlangC(c, lambda, mu);
        EXPECT_LT(pc, prev);
        prev = pc;
    }
}

TEST(ErlangC, FractionalServersInterpolate)
{
    const double lambda = 2.0, mu = 1.0;
    const double c3 = erlangC(3.0, lambda, mu);
    const double c4 = erlangC(4.0, lambda, mu);
    const double c35 = erlangC(3.5, lambda, mu);
    EXPECT_NEAR(c35, 0.5 * (c3 + c4), 1e-12);
    EXPECT_LT(c4, c35);
    EXPECT_LT(c35, c3);
}

TEST(Utilization, Basic)
{
    EXPECT_NEAR(utilization(4.0, 2.0, 1.0), 0.5, 1e-12);
    EXPECT_GT(utilization(1.0, 2.0, 1.0), 1.0);
}

TEST(MeanWait, MM1ClosedForm)
{
    // M/M/1: Wq = rho / (mu - lambda).
    const double lambda = 0.5, mu = 1.0;
    EXPECT_NEAR(mmcMeanWait(1.0, lambda, mu),
                0.5 / (1.0 - 0.5), 1e-9);
}

TEST(MeanWait, UnstableIsInfinite)
{
    EXPECT_EQ(mmcMeanWait(1.0, 2.0, 1.0), kInf);
    EXPECT_EQ(mmcMeanSojourn(1.0, 2.0, 1.0), kInf);
}

TEST(MeanSojourn, AddsServiceTime)
{
    const double w = mmcMeanWait(2.0, 1.0, 1.0);
    EXPECT_NEAR(mmcMeanSojourn(2.0, 1.0, 1.0), w + 1.0, 1e-12);
}

TEST(SojournPercentile, MM1ClosedForm)
{
    // M/M/1 sojourn is Exp(mu - lambda): p-quantile = -ln(1-p)/(mu-l).
    const double lambda = 0.6, mu = 1.0;
    const double p = 0.95;
    const double expected = -std::log(1.0 - p) / (mu - lambda);
    EXPECT_NEAR(mmcSojournPercentile(1.0, lambda, mu, p), expected,
                1e-6);
}

TEST(SojournPercentile, ZeroLoadIsServiceTail)
{
    // With no arrivals the sojourn is just the service time.
    const double p95 = mmcSojournPercentile(4.0, 0.0, 2.0, 0.95);
    EXPECT_NEAR(p95, -std::log(0.05) / 2.0, 1e-6);
}

TEST(SojournPercentile, UnstableIsInfinite)
{
    EXPECT_EQ(mmcSojournPercentile(2.0, 3.0, 1.0, 0.95), kInf);
}

TEST(SojournPercentile, NearSaturationIsInfiniteNotHuge)
{
    // lambda one ulp below c*mu used to slip past the `lambda >=
    // c*mu` guard: eta underflowed and the percentile came back as
    // a huge-but-finite number (~1e15) that poisoned downstream
    // averages instead of reading as "saturated".
    const double mu = 1.0;
    for (double c : {1.0, 2.0, 4.0}) {
        const double lambda = std::nextafter(c * mu, 0.0);
        EXPECT_EQ(mmcSojournPercentile(c, lambda, mu, 0.95), kInf)
            << "c=" << c;
        EXPECT_EQ(mmcMeanWait(c, lambda, mu), kInf) << "c=" << c;
        EXPECT_EQ(sojournPercentileApprox(c, lambda, mu, 3.0), kInf)
            << "c=" << c;
        EXPECT_EQ(erlangC(c, lambda, mu), 1.0) << "c=" << c;
    }
}

TEST(SojournTail, IsAlwaysAValidProbability)
{
    const double mu = 1.0;
    for (double c : {1.0, 2.0, 4.0}) {
        for (double rho : {0.0, 0.3, 0.9, 0.999999}) {
            const double lambda = rho * c * mu;
            for (double t = 0.0; t <= 50.0; t += 2.5) {
                const double p = mmcSojournTail(t, c, lambda, mu);
                EXPECT_GE(p, 0.0)
                    << "c=" << c << " rho=" << rho << " t=" << t;
                EXPECT_LE(p, 1.0)
                    << "c=" << c << " rho=" << rho << " t=" << t;
            }
        }
    }
}

TEST(SojournTail, BoundaryCases)
{
    // Non-positive horizon: P(T > t) = 1.
    EXPECT_EQ(mmcSojournTail(0.0, 2.0, 1.0, 1.0), 1.0);
    EXPECT_EQ(mmcSojournTail(-1.0, 2.0, 1.0, 1.0), 1.0);
    // At or past saturation the sojourn diverges.
    EXPECT_EQ(mmcSojournTail(10.0, 2.0, 2.0, 1.0), 1.0);
    EXPECT_EQ(mmcSojournTail(10.0, 2.0, 3.0, 1.0), 1.0);
    // M/M/1 sojourn is Exp(mu - lambda).
    const double lambda = 0.4, mu = 1.0, t = 2.0;
    EXPECT_NEAR(mmcSojournTail(t, 1.0, lambda, mu),
                std::exp(-(mu - lambda) * t), 1e-9);
    // The tail decreases in t.
    double prev = 1.0;
    for (double h = 0.5; h <= 20.0; h += 0.5) {
        const double p = mmcSojournTail(h, 2.0, 1.5, 1.0);
        EXPECT_LE(p, prev);
        prev = p;
    }
}

class SojournLoadSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(SojournLoadSweep, MonotoneInLoad)
{
    // Percentiles rise with load at fixed capacity: the knee shape
    // of the paper's Fig. 7.
    const double c = GetParam();
    const double mu = 1.0;
    double prev = 0.0;
    for (double rho = 0.05; rho < 0.99; rho += 0.05) {
        const double t = mmcSojournPercentile(c, rho * c * mu, mu,
                                              0.95);
        EXPECT_GT(t, prev * 0.999);
        prev = t;
    }
    // And explodes near saturation.
    const double near_sat =
        mmcSojournPercentile(c, 0.99 * c * mu, mu, 0.95);
    EXPECT_GT(near_sat,
              3.0 * mmcSojournPercentile(c, 0.1 * c, mu, 0.95));
}

INSTANTIATE_TEST_SUITE_P(ServerCounts, SojournLoadSweep,
                         ::testing::Values(1.0, 2.0, 4.0, 8.0));

TEST(SojournPercentile, MoreServersSameUtilHelps)
{
    // At equal utilisation, more servers give lower percentiles
    // (pooling effect).
    const double mu = 1.0, rho = 0.8;
    const double t2 = mmcSojournPercentile(2, rho * 2, mu, 0.95);
    const double t8 = mmcSojournPercentile(8, rho * 8, mu, 0.95);
    EXPECT_LT(t8, t2);
}

TEST(Backlog, AddsDrainDelay)
{
    const double base = mmcSojournPercentile(2.0, 1.0, 1.0, 0.95);
    const double with = mmcSojournPercentileWithBacklog(
        2.0, 1.0, 1.0, 10.0, 0.95);
    EXPECT_NEAR(with, base + 10.0 / 2.0, 1e-9);
}

TEST(Backlog, UnstableStaysInfinite)
{
    EXPECT_EQ(mmcSojournPercentileWithBacklog(1.0, 2.0, 1.0, 5.0,
                                              0.95),
              kInf);
}

TEST(ApproxSojourn, MatchesExactForExponentialService)
{
    // With svc_pmult = ln(20) (the exponential p95 multiplier), the
    // approximation should track the exact M/M/c percentile within
    // a modest relative error across moderate loads.
    const double mu = 1.0;
    for (double c : {1.0, 2.0, 4.0}) {
        for (double rho : {0.3, 0.6, 0.8}) {
            const double lambda = rho * c * mu;
            const double exact =
                mmcSojournPercentile(c, lambda, mu, 0.95);
            const double approx = sojournPercentileApprox(
                c, lambda, mu, -std::log(0.05), 0.95);
            EXPECT_NEAR(approx / exact, 1.0, 0.35)
                << "c=" << c << " rho=" << rho;
        }
    }
}

TEST(ApproxSojourn, ScalesWithServiceMultiplier)
{
    const double lo = sojournPercentileApprox(2.0, 0.5, 1.0, 1.0);
    const double hi = sojournPercentileApprox(2.0, 0.5, 1.0, 3.0);
    EXPECT_NEAR(hi - lo, 2.0, 1e-9);
}

TEST(ApproxSojourn, UnstableIsInfinite)
{
    EXPECT_EQ(sojournPercentileApprox(1.0, 2.0, 1.0, 3.0), kInf);
}

TEST(ApproxSojourn, NoWaitTermAtLightLoad)
{
    // When P(wait) <= 5%, the p95 is pure service tail.
    const double t = sojournPercentileApprox(8.0, 0.1, 1.0, 3.0);
    EXPECT_NEAR(t, 3.0, 1e-9);
}

} // namespace

/**
 * @file
 * Tests for ASCII chart rendering.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "report/ascii_chart.hh"

namespace
{

using ahq::report::heatmap;
using ahq::report::lineChart;
using ahq::report::Series;

TEST(LineChart, RendersSeriesAndLegend)
{
    Series s1{"up", {0, 1, 2, 3}, {0, 1, 2, 3}};
    Series s2{"down", {0, 1, 2, 3}, {3, 2, 1, 0}};
    std::ostringstream os;
    lineChart(os, {s1, s2}, 40, 10, "test chart");
    const std::string out = os.str();
    EXPECT_NE(out.find("test chart"), std::string::npos);
    EXPECT_NE(out.find("[*] up"), std::string::npos);
    EXPECT_NE(out.find("[o] down"), std::string::npos);
    EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(LineChart, HandlesEmptyData)
{
    std::ostringstream os;
    lineChart(os, {Series{"empty", {}, {}}}, 40, 10);
    EXPECT_NE(os.str().find("no finite data"), std::string::npos);
}

TEST(LineChart, SkipsNonFinitePoints)
{
    Series s{"mixed",
             {0, 1, 2},
             {1.0, std::numeric_limits<double>::infinity(), 3.0}};
    std::ostringstream os;
    lineChart(os, {s}, 40, 8);
    EXPECT_NE(os.str().find('*'), std::string::npos);
}

TEST(Heatmap, RendersRowsWithLabels)
{
    std::ostringstream os;
    heatmap(os, {{0.0, 0.5, 1.0}, {1.0, 0.5, 0.0}},
            {"rowA", "rowB"}, "heat");
    const std::string out = os.str();
    EXPECT_NE(out.find("heat"), std::string::npos);
    EXPECT_NE(out.find("rowA"), std::string::npos);
    // Highest shade character appears for the max cells.
    EXPECT_NE(out.find('@'), std::string::npos);
}

TEST(Heatmap, HandlesConstantMatrix)
{
    std::ostringstream os;
    heatmap(os, {{0.3, 0.3}, {0.3, 0.3}}, {"a", "b"});
    // Constant data renders at the low end without crashing.
    EXPECT_NE(os.str().find('|'), std::string::npos);
}

} // namespace

/**
 * @file
 * Tests for the CSV writer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "report/csv.hh"

namespace
{

using ahq::report::CsvWriter;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

TEST(Csv, WritesHeaderAndRows)
{
    const std::string path = "/tmp/ahq_csv_test1.csv";
    {
        CsvWriter w(path, {"x", "y"});
        ASSERT_TRUE(w.ok());
        w.addRow({"1", "2"});
        w.addRow({"3", "4"});
    }
    EXPECT_EQ(slurp(path), "x,y\n1,2\n3,4\n");
    std::remove(path.c_str());
}

TEST(Csv, EscapesSpecialCharacters)
{
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::escape("say \"hi\""),
              "\"say \"\"hi\"\"\"");
    EXPECT_EQ(CsvWriter::escape("line\nbreak"),
              "\"line\nbreak\"");
}

TEST(Csv, UnwritablePathIsNonFatal)
{
    CsvWriter w("/nonexistent-dir/foo.csv", {"a"});
    EXPECT_FALSE(w.ok());
    w.addRow({"1"}); // must not crash
}

} // namespace

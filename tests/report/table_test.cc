/**
 * @file
 * Tests for the text table renderer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "report/table.hh"

namespace
{

using ahq::report::heading;
using ahq::report::TextTable;

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22222"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22222"), std::string::npos);
    // Separator line present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, ShortRowsPadded)
{
    TextTable t({"a", "b", "c"});
    t.addRow({"only"});
    std::ostringstream os;
    t.print(os);
    EXPECT_EQ(t.numRows(), 1u);
}

TEST(TextTable, NumFormatting)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(0.5), "0.500");
    EXPECT_EQ(TextTable::num(
                  std::numeric_limits<double>::infinity()),
              "inf");
    EXPECT_EQ(TextTable::num(std::nan("")), "nan");
}

TEST(Heading, Renders)
{
    std::ostringstream os;
    heading(os, "Table II");
    EXPECT_EQ(os.str(), "\n== Table II ==\n");
}

} // namespace

/**
 * @file
 * Tests for the ARQ controller (Algorithm 1).
 */

#include <gtest/gtest.h>

#include "machine/config.hh"
#include "sched/arq.hh"

namespace
{

using namespace ahq::sched;
using ahq::machine::kNoRegion;
using ahq::machine::MachineConfig;
using ahq::machine::RegionId;

/** Two LC apps + one BE app; ideal latencies set for easy ReT math. */
std::vector<AppObservation>
arqApps()
{
    std::vector<AppObservation> obs(3);
    for (int i = 0; i < 3; ++i) {
        auto &o = obs[static_cast<std::size_t>(i)];
        o.id = i;
        o.latencyCritical = i < 2;
        o.thresholdMs = 10.0;
        o.idealP95Ms = 2.0;
        o.p95Ms = 3.0; // ReT = 0.7: comfortable
        o.ipcSolo = 2.0;
        o.ipc = 1.8;
    }
    return obs;
}

/** An ARQ controller with settling disabled for stepwise tests. */
ArqConfig
eagerConfig()
{
    ArqConfig c;
    c.settleEpochs = 0;
    return c;
}

TEST(Arq, InitialLayoutIsSharedPlusEmptyIsoRegions)
{
    Arq s;
    const auto cfg = MachineConfig::xeonE52630v4();
    auto layout = s.initialLayout(cfg, arqApps());
    EXPECT_EQ(layout.numRegions(), 3); // shared + 2 iso
    EXPECT_EQ(layout.sharedRegion(), 0);
    EXPECT_EQ(layout.region(0).res, cfg.availableResources());
    EXPECT_TRUE(layout.region(layout.isolatedRegionOf(0)).res
                    .empty());
    EXPECT_EQ(s.corePolicy(),
              ahq::perf::CoreSharePolicy::LcPriority);
}

TEST(Arq, EquilibriumWhenEveryoneComfortable)
{
    Arq s(eagerConfig());
    const auto cfg = MachineConfig::xeonE52630v4();
    auto layout = s.initialLayout(cfg, arqApps());
    const auto obs = arqApps();
    for (int e = 0; e < 10; ++e) {
        s.adjust(layout, obs, 0.5 * e);
        // Victim and beneficiary are both the shared region:
        // equilibrium, nothing moves.
        EXPECT_EQ(layout.region(0).res,
                  cfg.availableResources());
    }
}

TEST(Arq, ViolatedAppGrowsIsolatedRegion)
{
    Arq s(eagerConfig());
    const auto cfg = MachineConfig::xeonE52630v4();
    auto obs = arqApps();
    auto layout = s.initialLayout(cfg, obs);
    obs[0].p95Ms = 25.0; // ReT = 0, Q > 0: beneficiary
    const RegionId iso = layout.isolatedRegionOf(0);
    s.adjust(layout, obs, 0.0);
    EXPECT_EQ(layout.region(iso).res.totalUnits(), 1);
    EXPECT_TRUE(layout.valid());
}

TEST(Arq, TieBreakPrefersLargerViolation)
{
    Arq s(eagerConfig());
    const auto cfg = MachineConfig::xeonE52630v4();
    auto obs = arqApps();
    auto layout = s.initialLayout(cfg, obs);
    obs[0].p95Ms = 12.0; // mildly violated (both ReT = 0)
    obs[1].p95Ms = 50.0; // badly violated: must win the tie
    const RegionId iso1 = layout.isolatedRegionOf(1);
    s.adjust(layout, obs, 0.0);
    EXPECT_EQ(layout.region(iso1).res.totalUnits(), 1);
}

TEST(Arq, RichAppDonatesIsolatedResourcesBack)
{
    Arq s(eagerConfig());
    const auto cfg = MachineConfig::xeonE52630v4();
    auto obs = arqApps();
    auto layout = s.initialLayout(cfg, obs);

    // Grow app 0's isolated region while it is violated.
    obs[0].p95Ms = 25.0;
    for (int e = 0; e < 6; ++e)
        s.adjust(layout, obs, 0.5 * e);
    const RegionId iso = layout.isolatedRegionOf(0);
    const int grown = layout.region(iso).res.totalUnits();
    ASSERT_GT(grown, 0);

    // Now app 0 is comfortable (ReT > 0.1): it becomes the victim
    // and its isolated region shrinks back toward the shared pool.
    obs[0].p95Ms = 3.0;
    for (int e = 6; e < 12; ++e)
        s.adjust(layout, obs, 0.5 * e);
    EXPECT_LT(layout.region(iso).res.totalUnits(), grown);
}

TEST(Arq, RollbackCancelsEntropyIncreasingMove)
{
    ArqConfig cfg_arq = eagerConfig();
    Arq s(cfg_arq);
    const auto cfg = MachineConfig::xeonE52630v4();
    auto obs = arqApps();
    auto layout = s.initialLayout(cfg, obs);

    // Epoch 0: app 0 violated -> a unit moves into its iso region.
    obs[0].p95Ms = 25.0;
    s.adjust(layout, obs, 0.0);
    const RegionId iso = layout.isolatedRegionOf(0);
    ASSERT_EQ(layout.region(iso).res.totalUnits(), 1);

    // Epoch 1: entropy got WORSE (BE collapsed): rollback required.
    obs[2].ipc = 0.01;
    s.adjust(layout, obs, 0.5);
    EXPECT_EQ(layout.region(iso).res.totalUnits(), 0);
}

TEST(Arq, BanPreventsImmediateRepetition)
{
    Arq s(eagerConfig());
    const auto cfg = MachineConfig::xeonE52630v4();
    auto obs = arqApps();
    auto layout = s.initialLayout(cfg, obs);

    obs[0].p95Ms = 25.0;
    s.adjust(layout, obs, 0.0); // move shared -> iso0
    obs[2].ipc = 0.01;          // entropy worsened
    s.adjust(layout, obs, 0.5); // rollback + ban shared region
    obs[2].ipc = 1.8;

    // While the shared region is banned, no further move happens
    // even though app 0 is still violated.
    const RegionId iso = layout.isolatedRegionOf(0);
    s.adjust(layout, obs, 1.0);
    EXPECT_EQ(layout.region(iso).res.totalUnits(), 0);

    // After the 60 s ban expires, ARQ tries again.
    s.adjust(layout, obs, 61.0);
    EXPECT_EQ(layout.region(iso).res.totalUnits(), 1);
}

TEST(Arq, RollbackDisabledAblation)
{
    ArqConfig cfg_arq = eagerConfig();
    cfg_arq.rollbackEnabled = false;
    Arq s(cfg_arq);
    const auto cfg = MachineConfig::xeonE52630v4();
    auto obs = arqApps();
    auto layout = s.initialLayout(cfg, obs);

    obs[0].p95Ms = 25.0;
    s.adjust(layout, obs, 0.0);
    const RegionId iso = layout.isolatedRegionOf(0);
    obs[2].ipc = 0.01;
    s.adjust(layout, obs, 0.5);
    // Without rollback the move stays and another may follow.
    EXPECT_GE(layout.region(iso).res.totalUnits(), 1);
}

TEST(Arq, SharedRegionDisabledAblation)
{
    ArqConfig cfg_arq = eagerConfig();
    cfg_arq.sharedRegionEnabled = false;
    Arq s(cfg_arq);
    const auto cfg = MachineConfig::xeonE52630v4();
    auto layout = s.initialLayout(cfg, arqApps());
    // Full isolation: LC apps are not members of the shared region.
    const RegionId shared = layout.sharedRegion();
    ASSERT_NE(shared, kNoRegion);
    EXPECT_FALSE(layout.region(shared).hasMember(0));
    EXPECT_TRUE(layout.region(shared).hasMember(2));
    // LC iso regions start with real resources.
    EXPECT_GT(layout.region(layout.isolatedRegionOf(0)).res
                  .totalUnits(),
              0);
    EXPECT_TRUE(layout.valid());
}

TEST(Arq, SettleEpochsSkipDecisions)
{
    ArqConfig cfg_arq;
    cfg_arq.settleEpochs = 1;
    Arq s(cfg_arq);
    const auto cfg = MachineConfig::xeonE52630v4();
    auto obs = arqApps();
    auto layout = s.initialLayout(cfg, obs);
    obs[0].p95Ms = 25.0;
    const RegionId iso = layout.isolatedRegionOf(0);
    s.adjust(layout, obs, 0.0); // move 1
    s.adjust(layout, obs, 0.5); // settling: no move
    EXPECT_EQ(layout.region(iso).res.totalUnits(), 1);
    s.adjust(layout, obs, 1.0); // move 2
    EXPECT_EQ(layout.region(iso).res.totalUnits(), 2);
}

TEST(Arq, LastReportExposed)
{
    Arq s(eagerConfig());
    const auto cfg = MachineConfig::xeonE52630v4();
    auto obs = arqApps();
    auto layout = s.initialLayout(cfg, obs);
    s.adjust(layout, obs, 0.0);
    EXPECT_EQ(s.lastReport().eLc, 0.0);
    EXPECT_GT(s.lastReport().eBe, 0.0);
    EXPECT_EQ(s.name(), "ARQ");
}

TEST(Arq, ResetClearsState)
{
    Arq s(eagerConfig());
    const auto cfg = MachineConfig::xeonE52630v4();
    auto obs = arqApps();
    auto layout = s.initialLayout(cfg, obs);
    obs[0].p95Ms = 25.0;
    s.adjust(layout, obs, 0.0);
    s.reset();
    auto layout2 = s.initialLayout(cfg, arqApps());
    EXPECT_EQ(layout2.region(0).res, cfg.availableResources());
}

} // namespace

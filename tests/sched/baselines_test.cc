/**
 * @file
 * Tests for the Unmanaged and LC-first baselines.
 */

#include <gtest/gtest.h>

#include "machine/config.hh"
#include "sched/lc_first.hh"
#include "sched/unmanaged.hh"

namespace
{

using namespace ahq::sched;
using ahq::machine::MachineConfig;

std::vector<AppObservation>
fourApps()
{
    std::vector<AppObservation> obs(4);
    for (int i = 0; i < 4; ++i) {
        obs[static_cast<std::size_t>(i)].id = i;
        obs[static_cast<std::size_t>(i)].latencyCritical = i < 3;
    }
    return obs;
}

TEST(Unmanaged, SingleSharedRegionWithEverything)
{
    Unmanaged s;
    const auto cfg = MachineConfig::xeonE52630v4();
    auto layout = s.initialLayout(cfg, fourApps());
    EXPECT_EQ(layout.numRegions(), 1);
    EXPECT_TRUE(layout.region(0).shared);
    EXPECT_EQ(layout.region(0).res, cfg.availableResources());
    EXPECT_EQ(layout.region(0).members.size(), 4u);
    EXPECT_TRUE(layout.valid());
}

TEST(Unmanaged, FairSharePolicyAndNoAdjustment)
{
    Unmanaged s;
    EXPECT_EQ(s.corePolicy(), ahq::perf::CoreSharePolicy::FairShare);
    const auto cfg = MachineConfig::xeonE52630v4();
    auto layout = s.initialLayout(cfg, fourApps());
    const auto before = layout.region(0).res;
    auto obs = fourApps();
    obs[0].p95Ms = 1e9; // catastrophic violation: still no reaction
    obs[0].thresholdMs = 1.0;
    s.adjust(layout, obs, 1.0);
    EXPECT_EQ(layout.region(0).res, before);
    EXPECT_EQ(s.name(), "Unmanaged");
}

TEST(LcFirst, SharedLayoutWithPriorityPolicy)
{
    LcFirst s;
    const auto cfg = MachineConfig::xeonE52630v4();
    auto layout = s.initialLayout(cfg, fourApps());
    EXPECT_EQ(layout.numRegions(), 1);
    EXPECT_EQ(s.corePolicy(),
              ahq::perf::CoreSharePolicy::LcPriority);
    EXPECT_EQ(s.name(), "LC-first");
}

TEST(LcFirst, NoAdjustmentEither)
{
    LcFirst s;
    const auto cfg = MachineConfig::xeonE52630v4();
    auto layout = s.initialLayout(cfg, fourApps());
    const auto before = layout.region(0).res;
    s.adjust(layout, fourApps(), 1.0);
    EXPECT_EQ(layout.region(0).res, before);
}

TEST(Baselines, RespectRestrictedAvailability)
{
    Unmanaged s;
    const auto cfg =
        MachineConfig::xeonE52630v4().withAvailable(6, 12, 5);
    auto layout = s.initialLayout(cfg, fourApps());
    EXPECT_EQ(layout.region(0).res,
              (ahq::machine::ResourceVector{6, 12, 5}));
}

} // namespace

/**
 * @file
 * Tests for the CLITE Bayesian-optimisation controller.
 */

#include <gtest/gtest.h>

#include "machine/config.hh"
#include "sched/clite.hh"

namespace
{

using namespace ahq::sched;
using ahq::machine::MachineConfig;
using ahq::machine::ResourceVector;

std::vector<AppObservation>
twoLcOneBe(double p95_a = 3.0, double p95_b = 3.0, double ipc = 1.5)
{
    std::vector<AppObservation> obs(3);
    for (int i = 0; i < 3; ++i) {
        auto &o = obs[static_cast<std::size_t>(i)];
        o.id = i;
        o.latencyCritical = i < 2;
        o.thresholdMs = 10.0;
        o.loadFraction = 0.3;
        o.ipcSolo = 2.0;
    }
    obs[0].p95Ms = p95_a;
    obs[1].p95Ms = p95_b;
    obs[2].ipc = ipc;
    return obs;
}

TEST(Clite, InitialLayoutEvenPartitions)
{
    Clite s;
    const auto cfg = MachineConfig::xeonE52630v4();
    auto layout = s.initialLayout(cfg, twoLcOneBe());
    EXPECT_EQ(layout.numRegions(), 3);
    EXPECT_TRUE(layout.valid());
    EXPECT_TRUE(layout.unallocated().empty());
    // Even split: 4, 3, 3 cores.
    EXPECT_EQ(layout.region(0).res.cores, 4);
    EXPECT_EQ(layout.region(2).res.cores, 3);
}

TEST(Clite, ExplorationChangesConfiguration)
{
    Clite s;
    const auto cfg = MachineConfig::xeonE52630v4();
    auto obs = twoLcOneBe();
    auto layout = s.initialLayout(cfg, obs);
    const auto initial = layout.region(0).res;
    bool changed = false;
    for (int e = 0; e < 10 && !changed; ++e) {
        s.adjust(layout, obs, 0.5 * e);
        changed = !(layout.region(0).res == initial);
        EXPECT_TRUE(layout.valid());
    }
    EXPECT_TRUE(changed);
}

TEST(Clite, EveryExploredConfigKeepsMinimumViability)
{
    CliteConfig cc;
    Clite s(cc);
    const auto cfg = MachineConfig::xeonE52630v4();
    auto obs = twoLcOneBe();
    auto layout = s.initialLayout(cfg, obs);
    for (int e = 0; e < 80; ++e) {
        s.adjust(layout, obs, 0.5 * e);
        ASSERT_TRUE(layout.valid());
        for (int g = 0; g < layout.numRegions(); ++g) {
            EXPECT_GE(layout.region(g).res.cores, 1);
            EXPECT_GE(layout.region(g).res.llcWays, 1);
        }
        // The full machine stays allocated.
        EXPECT_EQ(layout.allocated(),
                  cfg.availableResources());
    }
}

TEST(Clite, PinsAfterBudgetWhenFeasible)
{
    CliteConfig cc;
    cc.totalBudget = 8;
    cc.settleEpochs = 0;
    Clite s(cc);
    const auto cfg = MachineConfig::xeonE52630v4();
    auto obs = twoLcOneBe(); // always comfortably feasible
    auto layout = s.initialLayout(cfg, obs);
    for (int e = 0; e < 12; ++e)
        s.adjust(layout, obs, 0.5 * e);
    // Past the budget the configuration must stop moving.
    const auto pinned = layout.region(0).res;
    for (int e = 12; e < 24; ++e) {
        s.adjust(layout, obs, 0.5 * e);
        EXPECT_EQ(layout.region(0).res, pinned);
    }
}

TEST(Clite, LoadShiftTriggersReExploration)
{
    CliteConfig cc;
    cc.totalBudget = 6;
    cc.settleEpochs = 0;
    Clite s(cc);
    const auto cfg = MachineConfig::xeonE52630v4();
    auto obs = twoLcOneBe();
    auto layout = s.initialLayout(cfg, obs);
    for (int e = 0; e < 10; ++e)
        s.adjust(layout, obs, 0.5 * e);
    const auto pinned = layout.region(0).res;

    // Shift the load: CLITE must abandon the pinned optimum.
    for (auto &o : obs) {
        if (o.latencyCritical)
            o.loadFraction = 0.8;
    }
    bool moved = false;
    for (int e = 10; e < 20 && !moved; ++e) {
        s.adjust(layout, obs, 0.5 * e);
        moved = !(layout.region(0).res == pinned);
    }
    EXPECT_TRUE(moved);
}

TEST(Clite, SamplesCollectedGrows)
{
    CliteConfig cc;
    cc.settleEpochs = 0;
    Clite s(cc);
    const auto cfg = MachineConfig::xeonE52630v4();
    auto obs = twoLcOneBe();
    auto layout = s.initialLayout(cfg, obs);
    EXPECT_EQ(s.samplesCollected(), 0);
    for (int e = 0; e < 5; ++e)
        s.adjust(layout, obs, 0.5 * e);
    EXPECT_EQ(s.samplesCollected(), 5);
}

TEST(Clite, SettleEpochsSkipMeasurements)
{
    CliteConfig cc;
    cc.settleEpochs = 2;
    Clite s(cc);
    const auto cfg = MachineConfig::xeonE52630v4();
    auto obs = twoLcOneBe();
    auto layout = s.initialLayout(cfg, obs);
    for (int e = 0; e < 9; ++e)
        s.adjust(layout, obs, 0.5 * e);
    // Every third interval is scored: 9 / 3 = 3 samples.
    EXPECT_EQ(s.samplesCollected(), 3);
}

TEST(Clite, ResetRestoresFreshState)
{
    Clite s;
    const auto cfg = MachineConfig::xeonE52630v4();
    auto obs = twoLcOneBe();
    auto layout = s.initialLayout(cfg, obs);
    for (int e = 0; e < 10; ++e)
        s.adjust(layout, obs, 0.5 * e);
    s.reset();
    EXPECT_EQ(s.samplesCollected(), 0);
    EXPECT_EQ(s.name(), "CLITE");
}

TEST(Clite, UsesFairShareOnlyInsideBePool)
{
    Clite s;
    EXPECT_EQ(s.corePolicy(), ahq::perf::CoreSharePolicy::FairShare);
}

} // namespace

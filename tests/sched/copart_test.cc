/**
 * @file
 * Tests for the CoPart-style fairness baseline.
 */

#include <gtest/gtest.h>

#include "machine/config.hh"
#include "sched/copart.hh"

namespace
{

using namespace ahq::sched;
using ahq::machine::MachineConfig;

std::vector<AppObservation>
mixed(double lc_slowdown = 1.0, double be_slowdown = 1.0)
{
    std::vector<AppObservation> obs(3);
    for (int i = 0; i < 3; ++i) {
        obs[static_cast<std::size_t>(i)].id = i;
        obs[static_cast<std::size_t>(i)].latencyCritical = i < 2;
    }
    obs[0].idealP95Ms = 2.0;
    obs[0].p95Ms = 2.0 * lc_slowdown;
    obs[0].thresholdMs = 10.0;
    obs[1].idealP95Ms = 2.0;
    obs[1].p95Ms = 2.0;
    obs[1].thresholdMs = 10.0;
    obs[2].ipcSolo = 2.0;
    obs[2].ipc = 2.0 / be_slowdown;
    return obs;
}

TEST(CoPart, SlowdownNotionPerKind)
{
    const auto obs = mixed(3.0, 2.0);
    EXPECT_NEAR(CoPart::slowdownOf(obs[0]), 3.0, 1e-12);
    EXPECT_NEAR(CoPart::slowdownOf(obs[1]), 1.0, 1e-12);
    EXPECT_NEAR(CoPart::slowdownOf(obs[2]), 2.0, 1e-12);
}

TEST(CoPart, EveryAppGetsOwnPartition)
{
    CoPart s;
    auto layout = s.initialLayout(MachineConfig::xeonE52630v4(),
                                  mixed());
    EXPECT_EQ(layout.numRegions(), 3);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(layout.isolatedRegionOf(i), i);
    EXPECT_TRUE(layout.valid());
    EXPECT_TRUE(layout.unallocated().empty());
}

TEST(CoPart, TransfersFromLeastToMostSlowed)
{
    CoPart s;
    auto layout = s.initialLayout(MachineConfig::xeonE52630v4(),
                                  mixed());
    const int worst_before = layout.region(0).res.totalUnits();
    const int best_before = layout.region(1).res.totalUnits();
    s.adjust(layout, mixed(3.0, 1.5), 0.5); // app 0 most slowed
    EXPECT_EQ(layout.region(0).res.totalUnits(), worst_before + 1);
    EXPECT_EQ(layout.region(1).res.totalUnits(), best_before - 1);
}

TEST(CoPart, HysteresisPreventsChurn)
{
    CoPart s;
    auto layout = s.initialLayout(MachineConfig::xeonE52630v4(),
                                  mixed());
    const auto before = layout.region(0).res;
    s.adjust(layout, mixed(1.05, 1.02), 0.5); // within threshold
    EXPECT_EQ(layout.region(0).res, before);
}

TEST(CoPart, ConvergesTowardEqualSlowdowns)
{
    // Feed a fixed imbalance repeatedly; transfers must continue
    // and remain legal until the donor hits its floor.
    CoPart s;
    auto layout = s.initialLayout(MachineConfig::xeonE52630v4(),
                                  mixed());
    for (int e = 0; e < 30; ++e) {
        s.adjust(layout, mixed(4.0, 1.0), 0.5 * e);
        ASSERT_TRUE(layout.valid());
    }
    // App 0 accumulated most of app 1's donatable resources.
    EXPECT_GT(layout.region(0).res.totalUnits(),
              layout.region(1).res.totalUnits());
    EXPECT_GE(layout.region(1).res.cores, 1);
    EXPECT_GE(layout.region(1).res.llcWays, 1);
}

TEST(CoPart, SingleAppIsNoOp)
{
    CoPart s;
    std::vector<AppObservation> one(1);
    one[0].id = 0;
    one[0].latencyCritical = true;
    auto layout = s.initialLayout(MachineConfig::xeonE52630v4(),
                                  one);
    const auto before = layout.region(0).res;
    s.adjust(layout, one, 0.5);
    EXPECT_EQ(layout.region(0).res, before);
    EXPECT_EQ(s.name(), "CoPart");
}

} // namespace

/**
 * @file
 * Tests for the Gaussian process and expected improvement.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sched/gp.hh"
#include "stats/rng.hh"

namespace
{

using ahq::sched::GaussianProcess;
using ahq::sched::normalCdf;
using ahq::sched::normalPdf;
using ahq::stats::Rng;

TEST(NormalFunctions, KnownValues)
{
    EXPECT_NEAR(normalPdf(0.0), 1.0 / std::sqrt(2.0 * M_PI), 1e-12);
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normalCdf(1.6448536), 0.95, 1e-6);
    EXPECT_NEAR(normalCdf(-1.6448536), 0.05, 1e-6);
}

TEST(GaussianProcess, InterpolatesTrainingPoints)
{
    GaussianProcess gp(0.5, 1.0, 1e-8);
    const std::vector<std::vector<double>> xs{{0.0}, {0.5}, {1.0}};
    const std::vector<double> ys{1.0, 2.0, 0.5};
    gp.fit(xs, ys);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const auto p = gp.predict(xs[i]);
        EXPECT_NEAR(p.mean, ys[i], 1e-3);
        EXPECT_LT(p.variance, 1e-4);
    }
}

TEST(GaussianProcess, UncertaintyGrowsAwayFromData)
{
    GaussianProcess gp(0.3, 1.0, 1e-6);
    gp.fit({{0.0}, {0.2}}, {1.0, 1.2});
    const auto near = gp.predict({0.1});
    const auto far = gp.predict({3.0});
    EXPECT_LT(near.variance, far.variance);
    // Far from data the posterior reverts to the (centred) prior.
    EXPECT_NEAR(far.mean, 1.1, 1e-3);
    EXPECT_NEAR(far.variance, 1.0, 1e-3);
}

TEST(GaussianProcess, RecoversSmoothFunction)
{
    GaussianProcess gp(0.4, 1.0, 1e-4);
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (double x = 0.0; x <= 1.0; x += 0.1) {
        xs.push_back({x});
        ys.push_back(std::sin(3.0 * x));
    }
    gp.fit(xs, ys);
    for (double x = 0.05; x < 1.0; x += 0.1) {
        const auto p = gp.predict({x});
        EXPECT_NEAR(p.mean, std::sin(3.0 * x), 0.05) << x;
    }
}

TEST(GaussianProcess, MultiDimensionalInputs)
{
    GaussianProcess gp(0.6, 1.0, 1e-6);
    // f(x, y) = x + y on a small grid.
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (double x = 0.0; x <= 1.0; x += 0.25) {
        for (double y = 0.0; y <= 1.0; y += 0.25) {
            xs.push_back({x, y});
            ys.push_back(x + y);
        }
    }
    gp.fit(xs, ys);
    const auto p = gp.predict({0.4, 0.6});
    EXPECT_NEAR(p.mean, 1.0, 0.05);
}

TEST(GaussianProcess, ExpectedImprovementPrefersPromising)
{
    GaussianProcess gp(0.3, 1.0, 1e-6);
    // Rising trend: EI beyond the right edge should dominate EI at
    // the known-bad left edge.
    gp.fit({{0.0}, {0.3}, {0.6}}, {0.0, 0.5, 1.0});
    const double ei_right = gp.expectedImprovement({0.8}, 1.0);
    const double ei_left = gp.expectedImprovement({0.05}, 1.0);
    EXPECT_GT(ei_right, ei_left);
}

TEST(GaussianProcess, ExpectedImprovementZeroAtSaturatedPoint)
{
    GaussianProcess gp(0.3, 1.0, 1e-9);
    gp.fit({{0.5}}, {2.0});
    // The training point itself has ~no variance and no improvement.
    EXPECT_LT(gp.expectedImprovement({0.5}, 2.0), 1e-4);
}

TEST(GaussianProcess, ExpectedImprovementNonNegative)
{
    GaussianProcess gp(0.4, 1.0, 1e-4);
    Rng rng(5);
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (int i = 0; i < 12; ++i) {
        xs.push_back({rng.uniform(), rng.uniform()});
        ys.push_back(rng.normal(0.0, 1.0));
    }
    gp.fit(xs, ys);
    double best = *std::max_element(ys.begin(), ys.end());
    for (int i = 0; i < 100; ++i) {
        const double ei = gp.expectedImprovement(
            {rng.uniform(), rng.uniform()}, best);
        EXPECT_GE(ei, 0.0);
    }
}

TEST(GaussianProcess, NoisyObservationsSmoothed)
{
    GaussianProcess gp(0.5, 1.0, 0.25);
    // Two conflicting observations at the same x: posterior mean
    // lands between them.
    gp.fit({{0.5}, {0.5}}, {0.0, 1.0});
    const auto p = gp.predict({0.5});
    EXPECT_GT(p.mean, 0.2);
    EXPECT_LT(p.mean, 0.8);
}

TEST(GaussianProcess, FittedFlag)
{
    GaussianProcess gp(0.5, 1.0, 0.01);
    EXPECT_FALSE(gp.fitted());
    gp.fit({{0.0}}, {1.0});
    EXPECT_TRUE(gp.fitted());
    EXPECT_EQ(gp.numSamples(), 1u);
}

} // namespace

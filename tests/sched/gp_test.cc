/**
 * @file
 * Tests for the Gaussian process and expected improvement.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sched/gp.hh"
#include "stats/rng.hh"

namespace
{

using ahq::sched::GaussianProcess;
using ahq::sched::normalCdf;
using ahq::sched::normalPdf;
using ahq::stats::Rng;

TEST(NormalFunctions, KnownValues)
{
    EXPECT_NEAR(normalPdf(0.0), 1.0 / std::sqrt(2.0 * M_PI), 1e-12);
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normalCdf(1.6448536), 0.95, 1e-6);
    EXPECT_NEAR(normalCdf(-1.6448536), 0.05, 1e-6);
}

TEST(GaussianProcess, InterpolatesTrainingPoints)
{
    GaussianProcess gp(0.5, 1.0, 1e-8);
    const std::vector<std::vector<double>> xs{{0.0}, {0.5}, {1.0}};
    const std::vector<double> ys{1.0, 2.0, 0.5};
    gp.fit(xs, ys);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const auto p = gp.predict(xs[i]);
        EXPECT_NEAR(p.mean, ys[i], 1e-3);
        EXPECT_LT(p.variance, 1e-4);
    }
}

TEST(GaussianProcess, UncertaintyGrowsAwayFromData)
{
    GaussianProcess gp(0.3, 1.0, 1e-6);
    gp.fit({{0.0}, {0.2}}, {1.0, 1.2});
    const auto near = gp.predict({0.1});
    const auto far = gp.predict({3.0});
    EXPECT_LT(near.variance, far.variance);
    // Far from data the posterior reverts to the (centred) prior.
    EXPECT_NEAR(far.mean, 1.1, 1e-3);
    EXPECT_NEAR(far.variance, 1.0, 1e-3);
}

TEST(GaussianProcess, RecoversSmoothFunction)
{
    GaussianProcess gp(0.4, 1.0, 1e-4);
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (double x = 0.0; x <= 1.0; x += 0.1) {
        xs.push_back({x});
        ys.push_back(std::sin(3.0 * x));
    }
    gp.fit(xs, ys);
    for (double x = 0.05; x < 1.0; x += 0.1) {
        const auto p = gp.predict({x});
        EXPECT_NEAR(p.mean, std::sin(3.0 * x), 0.05) << x;
    }
}

TEST(GaussianProcess, MultiDimensionalInputs)
{
    GaussianProcess gp(0.6, 1.0, 1e-6);
    // f(x, y) = x + y on a small grid.
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (double x = 0.0; x <= 1.0; x += 0.25) {
        for (double y = 0.0; y <= 1.0; y += 0.25) {
            xs.push_back({x, y});
            ys.push_back(x + y);
        }
    }
    gp.fit(xs, ys);
    const auto p = gp.predict({0.4, 0.6});
    EXPECT_NEAR(p.mean, 1.0, 0.05);
}

TEST(GaussianProcess, ExpectedImprovementPrefersPromising)
{
    GaussianProcess gp(0.3, 1.0, 1e-6);
    // Rising trend: EI beyond the right edge should dominate EI at
    // the known-bad left edge.
    gp.fit({{0.0}, {0.3}, {0.6}}, {0.0, 0.5, 1.0});
    const double ei_right = gp.expectedImprovement({0.8}, 1.0);
    const double ei_left = gp.expectedImprovement({0.05}, 1.0);
    EXPECT_GT(ei_right, ei_left);
}

TEST(GaussianProcess, ExpectedImprovementZeroAtSaturatedPoint)
{
    GaussianProcess gp(0.3, 1.0, 1e-9);
    gp.fit({{0.5}}, {2.0});
    // The training point itself has ~no variance and no improvement.
    EXPECT_LT(gp.expectedImprovement({0.5}, 2.0), 1e-4);
}

TEST(GaussianProcess, ExpectedImprovementNonNegative)
{
    GaussianProcess gp(0.4, 1.0, 1e-4);
    Rng rng(5);
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (int i = 0; i < 12; ++i) {
        xs.push_back({rng.uniform(), rng.uniform()});
        ys.push_back(rng.normal(0.0, 1.0));
    }
    gp.fit(xs, ys);
    double best = *std::max_element(ys.begin(), ys.end());
    for (int i = 0; i < 100; ++i) {
        const double ei = gp.expectedImprovement(
            {rng.uniform(), rng.uniform()}, best);
        EXPECT_GE(ei, 0.0);
    }
}

TEST(GaussianProcess, NoisyObservationsSmoothed)
{
    GaussianProcess gp(0.5, 1.0, 0.25);
    // Two conflicting observations at the same x: posterior mean
    // lands between them.
    gp.fit({{0.5}, {0.5}}, {0.0, 1.0});
    const auto p = gp.predict({0.5});
    EXPECT_GT(p.mean, 0.2);
    EXPECT_LT(p.mean, 0.8);
}

TEST(GaussianProcess, FittedFlag)
{
    GaussianProcess gp(0.5, 1.0, 0.01);
    EXPECT_FALSE(gp.fitted());
    gp.fit({{0.0}}, {1.0});
    EXPECT_TRUE(gp.fitted());
    EXPECT_EQ(gp.numSamples(), 1u);
}

// ---- incremental-update property tests -------------------------

/**
 * Reference implementation: the textbook one-shot fit (dense K,
 * full O(n^3) Cholesky, forward/back substitution), independent of
 * the incremental code under test.
 */
class ReferenceGp
{
  public:
    ReferenceGp(double ls, double sv, double nv)
        : ls_(ls), sv_(sv), nv_(nv)
    {
    }

    void fit(const std::vector<std::vector<double>> &xs,
             const std::vector<double> &ys)
    {
        train_ = xs;
        const std::size_t n = xs.size();
        yMean_ = 0.0;
        for (double y : ys)
            yMean_ += y;
        yMean_ /= static_cast<double>(n);
        chol_.assign(n * n, 0.0);
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j <= i; ++j) {
                double k = kernel(xs[i], xs[j]);
                if (i == j)
                    k += nv_ + 1e-10;
                chol_[i * n + j] = k;
            }
        for (std::size_t j = 0; j < n; ++j) {
            double diag = chol_[j * n + j];
            for (std::size_t k = 0; k < j; ++k)
                diag -= chol_[j * n + k] * chol_[j * n + k];
            const double l_jj = std::sqrt(diag);
            chol_[j * n + j] = l_jj;
            for (std::size_t i = j + 1; i < n; ++i) {
                double sum = chol_[i * n + j];
                for (std::size_t k = 0; k < j; ++k)
                    sum -= chol_[i * n + k] * chol_[j * n + k];
                chol_[i * n + j] = sum / l_jj;
            }
        }
        std::vector<double> z(n);
        for (std::size_t i = 0; i < n; ++i) {
            double sum = ys[i] - yMean_;
            for (std::size_t k = 0; k < i; ++k)
                sum -= chol_[i * n + k] * z[k];
            z[i] = sum / chol_[i * n + i];
        }
        alpha_.assign(n, 0.0);
        for (std::size_t ii = n; ii-- > 0;) {
            double sum = z[ii];
            for (std::size_t k = ii + 1; k < n; ++k)
                sum -= chol_[k * n + ii] * alpha_[k];
            alpha_[ii] = sum / chol_[ii * n + ii];
        }
    }

    GaussianProcess::Prediction
    predict(const std::vector<double> &x) const
    {
        const std::size_t n = train_.size();
        std::vector<double> kstar(n), v(n);
        for (std::size_t i = 0; i < n; ++i)
            kstar[i] = kernel(train_[i], x);
        double mean = yMean_;
        for (std::size_t i = 0; i < n; ++i)
            mean += kstar[i] * alpha_[i];
        for (std::size_t i = 0; i < n; ++i) {
            double sum = kstar[i];
            for (std::size_t k = 0; k < i; ++k)
                sum -= chol_[i * n + k] * v[k];
            v[i] = sum / chol_[i * n + i];
        }
        double var = kernel(x, x);
        for (std::size_t i = 0; i < n; ++i)
            var -= v[i] * v[i];
        return {mean, std::max(var, 1e-12)};
    }

  private:
    double kernel(const std::vector<double> &a,
                  const std::vector<double> &b) const
    {
        double d2 = 0.0;
        for (std::size_t i = 0; i < a.size(); ++i) {
            const double d = a[i] - b[i];
            d2 += d * d;
        }
        return sv_ * std::exp(-0.5 * d2 / (ls_ * ls_));
    }

    double ls_, sv_, nv_;
    std::vector<std::vector<double>> train_;
    std::vector<double> chol_, alpha_;
    double yMean_ = 0.0;
};

/** Posterior agreement at training points and random queries. */
void
expectPosteriorsMatch(const GaussianProcess &gp, const ReferenceGp &ref,
                      const std::vector<std::vector<double>> &window,
                      Rng &rng, double tol)
{
    const std::size_t dim = window.front().size();
    for (const auto &x : window) {
        const auto a = gp.predict(x);
        const auto b = ref.predict(x);
        ASSERT_NEAR(a.mean, b.mean, tol);
        ASSERT_NEAR(a.variance, b.variance, tol);
    }
    for (int q = 0; q < 16; ++q) {
        std::vector<double> x(dim);
        for (auto &v : x)
            v = rng.uniform();
        const auto a = gp.predict(x);
        const auto b = ref.predict(x);
        ASSERT_NEAR(a.mean, b.mean, tol);
        ASSERT_NEAR(a.variance, b.variance, tol);
    }
}

TEST(GaussianProcessIncremental, AppendMatchesFullRefit)
{
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        Rng rng(seed);
        const std::size_t dim = 1 + seed % 4;
        GaussianProcess gp(0.35, 1.0, 0.01);
        ReferenceGp ref(0.35, 1.0, 0.01);
        std::vector<std::vector<double>> xs;
        std::vector<double> ys;
        for (int i = 0; i < 24; ++i) {
            std::vector<double> x(dim);
            for (auto &v : x)
                v = rng.uniform();
            const double y = rng.normal(0.0, 1.0);
            xs.push_back(x);
            ys.push_back(y);
            gp.addSample(x, y);
            ref.fit(xs, ys);
            ASSERT_EQ(gp.numSamples(), xs.size());
            expectPosteriorsMatch(gp, ref, xs, rng, 1e-9);
        }
    }
}

TEST(GaussianProcessIncremental, WindowEvictionMatchesRefit)
{
    for (std::uint64_t seed = 11; seed <= 13; ++seed) {
        Rng rng(seed);
        const std::size_t dim = 2;
        const std::size_t window = 8;
        GaussianProcess gp(0.35, 1.0, 0.01);
        gp.setWindowCap(window);
        ReferenceGp ref(0.35, 1.0, 0.01);
        std::vector<std::vector<double>> xs;
        std::vector<double> ys;
        for (int i = 0; i < 40; ++i) {
            std::vector<double> x(dim);
            for (auto &v : x)
                v = rng.uniform();
            const double y = rng.normal(0.0, 1.0);
            xs.push_back(x);
            ys.push_back(y);
            gp.addSample(x, y);
            const std::size_t w = std::min(window, xs.size());
            ASSERT_EQ(gp.numSamples(), w);
            const std::vector<std::vector<double>> wx(
                xs.end() - static_cast<std::ptrdiff_t>(w), xs.end());
            const std::vector<double> wy(
                ys.end() - static_cast<std::ptrdiff_t>(w), ys.end());
            ref.fit(wx, wy);
            expectPosteriorsMatch(gp, ref, wx, rng, 1e-9);
        }
    }
}

TEST(GaussianProcessIncremental, ShrinkingWindowEvictsOldest)
{
    Rng rng(7);
    GaussianProcess gp(0.4, 1.0, 0.01);
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (int i = 0; i < 12; ++i) {
        xs.push_back({rng.uniform(), rng.uniform()});
        ys.push_back(rng.normal(0.0, 1.0));
        gp.addSample(xs.back(), ys.back());
    }
    gp.setWindowCap(5);
    EXPECT_EQ(gp.numSamples(), 5u);
    ReferenceGp ref(0.4, 1.0, 0.01);
    ref.fit({xs.end() - 5, xs.end()}, {ys.end() - 5, ys.end()});
    expectPosteriorsMatch(gp, ref, {xs.end() - 5, xs.end()}, rng,
                          1e-9);
}

TEST(GaussianProcessIncremental, NearSingularKernelStaysStable)
{
    // Duplicated inputs make K singular up to noise+jitter; the
    // incremental factor must keep matching the one-shot refit
    // through appends and window evictions. (At even smaller noise
    // the comparison hits the conditioning limit of *any* O(n^2)
    // down-date: the agreement bound is kappa * eps.)
    Rng rng(21);
    GaussianProcess gp(0.35, 1.0, 1e-6);
    gp.setWindowCap(6);
    ReferenceGp ref(0.35, 1.0, 1e-6);
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (int i = 0; i < 20; ++i) {
        // Every other sample repeats the previous x exactly.
        std::vector<double> x;
        if (i % 2 == 1 && !xs.empty())
            x = xs.back();
        else
            x = {rng.uniform(), rng.uniform(), rng.uniform()};
        const double y = rng.normal(0.0, 0.5);
        xs.push_back(x);
        ys.push_back(y);
        gp.addSample(x, y);
        const std::size_t w = std::min<std::size_t>(6, xs.size());
        const std::vector<std::vector<double>> wx(
            xs.end() - static_cast<std::ptrdiff_t>(w), xs.end());
        const std::vector<double> wy(
            ys.end() - static_cast<std::ptrdiff_t>(w), ys.end());
        ref.fit(wx, wy);
        expectPosteriorsMatch(gp, ref, wx, rng, 1e-9);
    }
}

TEST(GaussianProcessIncremental, FitEquivalentToAppendStream)
{
    Rng rng(3);
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (int i = 0; i < 10; ++i) {
        xs.push_back({rng.uniform(), rng.uniform()});
        ys.push_back(rng.normal(0.0, 1.0));
    }
    GaussianProcess fitted(0.35, 1.0, 0.01);
    fitted.fit(xs, ys);
    GaussianProcess appended(0.35, 1.0, 0.01);
    for (std::size_t i = 0; i < xs.size(); ++i)
        appended.addSample(xs[i], ys[i]);
    for (const auto &x : xs) {
        const auto a = fitted.predict(x);
        const auto b = appended.predict(x);
        // Identical code path: bitwise equal.
        EXPECT_EQ(a.mean, b.mean);
        EXPECT_EQ(a.variance, b.variance);
    }
}

TEST(GaussianProcessIncremental, ClearResetsDimensionality)
{
    GaussianProcess gp(0.5, 1.0, 0.01);
    gp.addSample({0.1, 0.2}, 1.0);
    EXPECT_TRUE(gp.fitted());
    gp.clear();
    EXPECT_FALSE(gp.fitted());
    gp.addSample({0.3}, 2.0); // new dimensionality accepted
    EXPECT_EQ(gp.numSamples(), 1u);
}

} // namespace

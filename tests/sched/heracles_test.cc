/**
 * @file
 * Tests for the Heracles-style threshold baseline.
 */

#include <gtest/gtest.h>

#include "machine/config.hh"
#include "sched/heracles.hh"

namespace
{

using namespace ahq::sched;
using ahq::machine::MachineConfig;
using ahq::machine::ResourceKind;

std::vector<AppObservation>
apps(double slack0 = 0.5, double load0 = 0.3)
{
    std::vector<AppObservation> obs(3);
    for (int i = 0; i < 3; ++i) {
        auto &o = obs[static_cast<std::size_t>(i)];
        o.id = i;
        o.latencyCritical = i < 2;
        o.thresholdMs = 10.0;
        o.p95Ms = 10.0 * (1.0 - 0.5);
        o.loadFraction = 0.3;
        o.ipcSolo = 2.0;
        o.ipc = 1.0;
    }
    obs[0].p95Ms = 10.0 * (1.0 - slack0);
    obs[0].loadFraction = load0;
    return obs;
}

TEST(Heracles, InitialLayoutTwoPools)
{
    Heracles s;
    auto layout = s.initialLayout(MachineConfig::xeonE52630v4(),
                                  apps());
    ASSERT_EQ(layout.numRegions(), 2);
    EXPECT_TRUE(layout.region(0).hasMember(0));
    EXPECT_TRUE(layout.region(0).hasMember(1));
    EXPECT_TRUE(layout.region(1).hasMember(2));
    EXPECT_FALSE(layout.region(1).hasMember(0));
    // LC pool dominates initially.
    EXPECT_GT(layout.region(0).res.cores,
              layout.region(1).res.cores);
    EXPECT_TRUE(layout.valid());
}

TEST(Heracles, GrowsBeWhenSlackAmple)
{
    Heracles s;
    auto layout = s.initialLayout(MachineConfig::xeonE52630v4(),
                                  apps());
    const int be_before = layout.region(1).res.totalUnits();
    s.adjust(layout, apps(0.5, 0.3), 0.5); // slack 0.5 > 0.25
    EXPECT_GT(layout.region(1).res.totalUnits(), be_before);
}

TEST(Heracles, ShrinksBeOnLowSlack)
{
    Heracles s;
    auto layout = s.initialLayout(MachineConfig::xeonE52630v4(),
                                  apps());
    // Grow a few units first.
    for (int e = 0; e < 4; ++e)
        s.adjust(layout, apps(0.5, 0.3), 0.5 * e);
    const int be_grown = layout.region(1).res.totalUnits();
    s.adjust(layout, apps(0.05, 0.3), 10.0); // slack below 0.10
    EXPECT_LT(layout.region(1).res.totalUnits(), be_grown);
}

TEST(Heracles, HoldsInDeadBand)
{
    Heracles s;
    auto layout = s.initialLayout(MachineConfig::xeonE52630v4(),
                                  apps());
    const int be_before = layout.region(1).res.totalUnits();
    s.adjust(layout, apps(0.18, 0.3), 0.5); // between thresholds
    EXPECT_EQ(layout.region(1).res.totalUnits(), be_before);
}

TEST(Heracles, FreezesGrowthNearPeakLoad)
{
    Heracles s;
    auto layout = s.initialLayout(MachineConfig::xeonE52630v4(),
                                  apps());
    const int be_before = layout.region(1).res.totalUnits();
    s.adjust(layout, apps(0.6, 0.9), 0.5); // slack fine, load high
    EXPECT_EQ(layout.region(1).res.totalUnits(), be_before);
}

TEST(Heracles, LayoutStaysValidUnderPressure)
{
    Heracles s;
    auto layout = s.initialLayout(MachineConfig::xeonE52630v4(),
                                  apps());
    // Shrink far beyond what the BE pool can give.
    for (int e = 0; e < 50; ++e) {
        s.adjust(layout, apps(0.01, 0.3), 0.5 * e);
        ASSERT_TRUE(layout.valid());
    }
    EXPECT_GE(layout.region(1).res.cores, 1);
    EXPECT_EQ(s.name(), "Heracles");
}

TEST(Heracles, NoBePoolIsNoOp)
{
    Heracles s;
    std::vector<AppObservation> lc_only(2);
    for (int i = 0; i < 2; ++i) {
        lc_only[static_cast<std::size_t>(i)].id = i;
        lc_only[static_cast<std::size_t>(i)].latencyCritical = true;
    }
    auto layout = s.initialLayout(MachineConfig::xeonE52630v4(),
                                  lc_only);
    EXPECT_EQ(layout.numRegions(), 1);
    const auto before = layout.region(0).res;
    s.adjust(layout, lc_only, 0.5);
    EXPECT_EQ(layout.region(0).res, before);
}

} // namespace

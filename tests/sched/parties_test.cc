/**
 * @file
 * Tests for the PARTIES controller.
 */

#include <gtest/gtest.h>

#include "machine/config.hh"
#include "sched/parties.hh"

namespace
{

using namespace ahq::sched;
using ahq::machine::MachineConfig;
using ahq::machine::RegionId;
using ahq::machine::ResourceKind;

std::vector<AppObservation>
threeLcOneBe()
{
    std::vector<AppObservation> obs(4);
    for (int i = 0; i < 4; ++i) {
        auto &o = obs[static_cast<std::size_t>(i)];
        o.id = i;
        o.latencyCritical = i < 3;
        o.thresholdMs = 10.0;
        o.p95Ms = 5.0; // slack 0.5: everyone comfortable
        o.ipcSolo = 2.0;
        o.ipc = 1.5;
    }
    return obs;
}

TEST(Parties, InitialLayoutStrictlyPartitioned)
{
    Parties s;
    const auto cfg = MachineConfig::xeonE52630v4();
    auto layout = s.initialLayout(cfg, threeLcOneBe());
    // 3 isolated LC regions + 1 shared BE pool.
    EXPECT_EQ(layout.numRegions(), 4);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(layout.isolatedRegionOf(i), i);
    const RegionId pool = layout.sharedRegion();
    ASSERT_NE(pool, ahq::machine::kNoRegion);
    EXPECT_EQ(layout.region(pool).members,
              (std::vector<ahq::machine::AppId>{3}));
    // Even split of 10 cores over 4 groups: 3,3,2,2.
    EXPECT_EQ(layout.region(0).res.cores, 3);
    EXPECT_EQ(layout.region(3).res.cores, 2);
    EXPECT_TRUE(layout.valid());
    EXPECT_TRUE(layout.unallocated().empty());
}

TEST(Parties, NoBePoolWhenNoBeApps)
{
    Parties s;
    auto obs = threeLcOneBe();
    obs.pop_back();
    auto layout = s.initialLayout(MachineConfig::xeonE52630v4(),
                                  obs);
    EXPECT_EQ(layout.numRegions(), 3);
    EXPECT_EQ(layout.sharedRegion(), ahq::machine::kNoRegion);
}

TEST(Parties, ViolationUpsizesFromPool)
{
    Parties s;
    const auto cfg = MachineConfig::xeonE52630v4();
    auto obs = threeLcOneBe();
    auto layout = s.initialLayout(cfg, obs);
    const int pool_cores_before =
        layout.region(layout.sharedRegion()).res.cores;
    const int app_cores_before = layout.region(0).res.cores;

    obs[0].p95Ms = 20.0; // violated
    s.adjust(layout, obs, 0.5);

    EXPECT_EQ(layout.region(0).res.cores, app_cores_before + 1);
    EXPECT_EQ(layout.region(layout.sharedRegion()).res.cores,
              pool_cores_before - 1);
    EXPECT_TRUE(layout.valid());
}

TEST(Parties, MultipleViolationsAllUpsized)
{
    Parties s;
    const auto cfg = MachineConfig::xeonE52630v4();
    auto obs = threeLcOneBe();
    auto layout = s.initialLayout(cfg, obs);
    obs[0].p95Ms = 20.0;
    obs[1].p95Ms = 30.0;
    const int a0 = layout.region(0).res.totalUnits();
    const int a1 = layout.region(1).res.totalUnits();
    s.adjust(layout, obs, 0.5);
    EXPECT_GT(layout.region(0).res.totalUnits(), a0);
    EXPECT_GT(layout.region(1).res.totalUnits(), a1);
}

TEST(Parties, ComfortStreakRequiredBeforeDownsize)
{
    Parties s;
    const auto cfg = MachineConfig::xeonE52630v4();
    auto obs = threeLcOneBe();
    auto layout = s.initialLayout(cfg, obs);
    const int pool = layout.sharedRegion();
    const int pool_units_before =
        layout.region(pool).res.totalUnits();

    // A single comfortable interval must not trigger a downsize.
    s.adjust(layout, obs, 0.5);
    EXPECT_EQ(layout.region(pool).res.totalUnits(),
              pool_units_before);

    // After enough comfortable intervals a trial downsize fires and
    // the BE pool grows by one unit.
    for (int i = 0; i < 10; ++i)
        s.adjust(layout, obs, 0.5 * (i + 2));
    EXPECT_GT(layout.region(pool).res.totalUnits(),
              pool_units_before);
}

TEST(Parties, TrialRevertedOnViolation)
{
    Parties s;
    const auto cfg = MachineConfig::xeonE52630v4();
    auto obs = threeLcOneBe();
    auto layout = s.initialLayout(cfg, obs);
    const int pool = layout.sharedRegion();

    // Build comfort and trigger a trial downsize.
    int downsized_app = -1;
    int trial_epoch = -1;
    for (int e = 0; e < 12; ++e) {
        const auto before = layout;
        s.adjust(layout, obs, 0.5 * e);
        for (int a = 0; a < 3; ++a) {
            if (layout.region(a).res.totalUnits() <
                before.region(a).res.totalUnits()) {
                downsized_app = a;
                trial_epoch = e;
            }
        }
        if (downsized_app >= 0)
            break;
    }
    ASSERT_GE(downsized_app, 0) << "no trial downsize happened";
    (void)trial_epoch;
    const int units_after_downsize =
        layout.region(downsized_app).res.totalUnits();

    // The downsized app violates: PARTIES must revert (and may
    // additionally upsize it, since it is violated).
    obs[static_cast<std::size_t>(downsized_app)].p95Ms = 50.0;
    s.adjust(layout, obs, 100.0);
    EXPECT_GE(layout.region(downsized_app).res.totalUnits(),
              units_after_downsize + 1);
    EXPECT_GE(layout.region(pool).res.cores, 1);
}

TEST(Parties, StarvedAppStealsFromRichDonor)
{
    Parties s;
    const auto cfg = MachineConfig::xeonE52630v4();
    auto obs = threeLcOneBe();
    auto layout = s.initialLayout(cfg, obs);

    // Drain the pool to its minimum by violating app 0 repeatedly.
    obs[0].p95Ms = 50.0;
    for (int e = 0; e < 12; ++e)
        s.adjust(layout, obs, 0.5 * e);
    const int pool = layout.sharedRegion();
    EXPECT_EQ(layout.region(pool).res.cores, 1);

    // App 0 still violated, app 1 has huge slack: donor kicks in.
    obs[1].p95Ms = 1.0;
    const int donor_before = layout.region(1).res.totalUnits();
    for (int e = 12; e < 18; ++e)
        s.adjust(layout, obs, 0.5 * e);
    EXPECT_LT(layout.region(1).res.totalUnits(), donor_before);
    EXPECT_TRUE(layout.valid());
}

TEST(Parties, ResetClearsState)
{
    Parties s;
    const auto cfg = MachineConfig::xeonE52630v4();
    auto obs = threeLcOneBe();
    auto layout = s.initialLayout(cfg, obs);
    obs[0].p95Ms = 20.0;
    s.adjust(layout, obs, 0.5);
    s.reset();
    // After reset the controller behaves like new: fresh layout and
    // no cooldowns that would block an immediate trial sequence.
    auto layout2 = s.initialLayout(cfg, threeLcOneBe());
    EXPECT_EQ(layout2.region(0).res.cores, 3);
    EXPECT_EQ(s.name(), "PARTIES");
}

} // namespace

/**
 * @file
 * Tests for the space-time model of Section IV-A (Fig. 4).
 */

#include <gtest/gtest.h>

#include "sched/spacetime.hh"

namespace
{

using namespace ahq::sched;

/** Demand patterns shaped like Fig. 4(a): two LC apps and one BE. */
std::vector<SpacetimeDemand>
fig4Demands()
{
    return {
        {"LC1", true, {1, 1, 0, 0, 1, 1, 0, 1}},
        {"LC2", true, {0, 1, 0, 1, 0, 1, 1, 0}},
        {"BE", false, {1, 0, 1, 1, 1, 1, 1, 1}},
    };
}

TEST(Spacetime, IsolatedServesOnlyOwner)
{
    const auto res = simulateIsolated(fig4Demands(), 0);
    // LC1 needs 5 slices and owns the resource: all served.
    EXPECT_EQ(res.served, 5);
    EXPECT_EQ(res.overheads, 0);
    // LC2 (4 demands) and BE (7 demands) are all denied.
    EXPECT_EQ(res.denied, 4 + 7);
    // Slices 2 and 3 (0-indexed) are idle for LC1.
    EXPECT_EQ(res.idleSlices, 3);
}

TEST(Spacetime, SharedPriorityServesEverySlice)
{
    const auto res = simulateSharedPriority(fig4Demands());
    // Demand exists in every slice, so no idle slices.
    EXPECT_EQ(res.idleSlices, 0);
    EXPECT_EQ(res.served, 8);
    // Sharing wastes fewer demands than isolation.
    const auto iso = simulateIsolated(fig4Demands(), 0);
    EXPECT_LT(res.denied, iso.denied);
    // Ownership changes cost overhead triangles.
    EXPECT_GT(res.overheads, 0);
}

TEST(Spacetime, UtilizationNearlyDoubles)
{
    // The paper's reading of Fig. 4: sharing roughly doubles the
    // resource utilisation relative to isolation.
    const auto iso = simulateIsolated(fig4Demands(), 0);
    const auto shared = simulateSharedPriority(fig4Demands());
    EXPECT_GE(shared.utilization() / iso.utilization(), 1.5);
}

TEST(Spacetime, LcBeatsBeOnConflict)
{
    const std::vector<SpacetimeDemand> d{
        {"LC", true, {1, 1}},
        {"BE", false, {1, 1}},
    };
    const auto res = simulateSharedPriority(d);
    EXPECT_EQ(res.outcomes[0][0], SlotOutcome::Served);
    EXPECT_EQ(res.outcomes[1][0], SlotOutcome::Denied);
}

TEST(Spacetime, EarlierLcWinsTies)
{
    const std::vector<SpacetimeDemand> d{
        {"LC1", true, {1}},
        {"LC2", true, {1}},
    };
    const auto res = simulateSharedPriority(d);
    EXPECT_EQ(res.outcomes[0][0], SlotOutcome::Served);
    EXPECT_EQ(res.outcomes[1][0], SlotOutcome::Denied);
}

TEST(Spacetime, BeServedWhenLcIdle)
{
    const std::vector<SpacetimeDemand> d{
        {"LC", true, {1, 0, 1}},
        {"BE", false, {0, 1, 1}},
    };
    const auto res = simulateSharedPriority(d);
    EXPECT_EQ(res.outcomes[1][1], SlotOutcome::ServedWithOverhead);
    EXPECT_EQ(res.outcomes[0][2], SlotOutcome::ServedWithOverhead);
    EXPECT_EQ(res.overheads, 2);
}

TEST(Spacetime, NoTransitionNoOverhead)
{
    const std::vector<SpacetimeDemand> d{
        {"LC", true, {1, 1, 1}},
    };
    const auto res = simulateSharedPriority(d);
    EXPECT_EQ(res.served, 3);
    EXPECT_EQ(res.overheads, 0);
}

TEST(Spacetime, EmptyDemandAllIdle)
{
    const std::vector<SpacetimeDemand> d{
        {"LC", true, {0, 0, 0}},
        {"BE", false, {0, 0, 0}},
    };
    const auto shared = simulateSharedPriority(d);
    EXPECT_EQ(shared.idleSlices, 3);
    EXPECT_EQ(shared.served, 0);
    EXPECT_EQ(shared.utilization(), 0.0);
}

TEST(Spacetime, OutcomeGridShapes)
{
    const auto res = simulateSharedPriority(fig4Demands());
    ASSERT_EQ(res.outcomes.size(), 3u);
    for (const auto &row : res.outcomes)
        EXPECT_EQ(row.size(), 8u);
}

} // namespace

/**
 * @file
 * Tests for the multi-class region simulator, including the
 * cross-validation of the analytic LcPriority contention model.
 */

#include <gtest/gtest.h>

#include "perf/queueing.hh"
#include "sim/multiclass_sim.hh"
#include "stats/percentile.hh"
#include "stats/rng.hh"

namespace
{

using namespace ahq::sim;
using ahq::stats::exactPercentile;
using ahq::stats::Rng;

TEST(MultiClass, SingleClassNoBeMatchesMmc)
{
    // One class on 4 shared servers with no BE work is plain M/M/4.
    LcClassSpec c;
    c.arrivalRate = 2.0;
    c.serviceRate = 1.0;
    c.maxConcurrency = 4;
    MultiClassSimulator sim({c}, 4, 0.0);
    Rng rng(3);
    const auto res = sim.run(20000.0, rng, 100.0);
    ASSERT_GT(res.lcSojournTimes[0].size(), 1000u);
    const double measured =
        exactPercentile(res.lcSojournTimes[0], 95.0);
    const double analytic =
        ahq::perf::mmcSojournPercentile(4, 2.0, 1.0, 0.95);
    EXPECT_NEAR(measured / analytic, 1.0, 0.1);
}

TEST(MultiClass, BeWorkDoesNotHurtLcUnderPriority)
{
    // Saturating BE work on the shared pool must leave LC latency
    // essentially unchanged (preemption) — the LcPriority premise.
    LcClassSpec c;
    c.arrivalRate = 2.0;
    c.serviceRate = 1.0;
    c.maxConcurrency = 4;
    Rng r1(5), r2(5);
    const auto quiet =
        MultiClassSimulator({c}, 4, 0.0).run(10000.0, r1, 100.0);
    const auto busy =
        MultiClassSimulator({c}, 4, 6.0).run(10000.0, r2, 100.0);
    const double p_quiet =
        exactPercentile(quiet.lcSojournTimes[0], 95.0);
    const double p_busy =
        exactPercentile(busy.lcSojournTimes[0], 95.0);
    EXPECT_NEAR(p_busy / p_quiet, 1.0, 0.15);
    EXPECT_GT(busy.beChunksCompleted, 0u);
}

TEST(MultiClass, BeGetsLeftoverCapacity)
{
    // One class at utilisation ~0.5 of a 4-server pool: BE should
    // get roughly half the pool's chunk throughput.
    LcClassSpec c;
    c.arrivalRate = 2.0;
    c.serviceRate = 1.0;
    c.maxConcurrency = 4;
    MultiClassSimulator sim({c}, 4, 5.0);
    Rng rng(7);
    const auto res = sim.run(8000.0, rng, 100.0);
    EXPECT_NEAR(res.beThroughput(), 0.5 * 4 * 5.0,
                0.1 * 4 * 5.0);
}

TEST(MultiClass, IsolatedServersShieldClass)
{
    // Class 0 has 2 private servers; a heavy class 1 floods the
    // shared pool. Class 0's latency must stay near its private
    // M/M/2 while class 1 queues.
    LcClassSpec c0;
    c0.arrivalRate = 1.0;
    c0.serviceRate = 1.0;
    c0.isolatedServers = 2;
    c0.maxConcurrency = 4;
    LcClassSpec c1;
    c1.arrivalRate = 3.6;
    c1.serviceRate = 1.0;
    c1.maxConcurrency = 4;
    MultiClassSimulator sim({c0, c1}, 4, 0.0);
    Rng rng(11);
    const auto res = sim.run(20000.0, rng, 200.0);
    const double p0 = exactPercentile(res.lcSojournTimes[0], 95.0);
    const double p1 = exactPercentile(res.lcSojournTimes[1], 95.0);
    // Class 0 ~ its private M/M/2 at rho 0.5 (it overflows into the
    // shared pool when busy, so it can only be better).
    const double analytic0 =
        ahq::perf::mmcSojournPercentile(2, 1.0, 1.0, 0.95);
    EXPECT_LT(p0, analytic0 * 1.1);
    EXPECT_GT(p1, p0);
}

TEST(MultiClass, ConcurrencyCapLimitsService)
{
    // A class capped at 1 concurrent request on a 4-server pool is
    // effectively M/M/1 even though servers abound.
    LcClassSpec c;
    c.arrivalRate = 0.6;
    c.serviceRate = 1.0;
    c.maxConcurrency = 1;
    MultiClassSimulator sim({c}, 4, 0.0);
    Rng rng(13);
    const auto res = sim.run(30000.0, rng, 200.0);
    const double measured =
        exactPercentile(res.lcSojournTimes[0], 95.0);
    const double analytic =
        ahq::perf::mmcSojournPercentile(1, 0.6, 1.0, 0.95);
    EXPECT_NEAR(measured / analytic, 1.0, 0.12);
}

TEST(MultiClass, TwoClassesShareFairlyByArrivalOrder)
{
    // Two identical classes on a shared pool behave like one pooled
    // M/M/4 at their combined rate.
    LcClassSpec c;
    c.arrivalRate = 1.2;
    c.serviceRate = 1.0;
    c.maxConcurrency = 4;
    MultiClassSimulator sim({c, c}, 4, 0.0);
    Rng rng(17);
    const auto res = sim.run(20000.0, rng, 200.0);
    const double p0 = exactPercentile(res.lcSojournTimes[0], 95.0);
    const double p1 = exactPercentile(res.lcSojournTimes[1], 95.0);
    EXPECT_NEAR(p0 / p1, 1.0, 0.12);
    const double analytic =
        ahq::perf::mmcSojournPercentile(4, 2.4, 1.0, 0.95);
    EXPECT_NEAR(p0 / analytic, 1.0, 0.15);
}

TEST(MultiClass, DeterministicForSeed)
{
    LcClassSpec c;
    c.arrivalRate = 1.0;
    c.serviceRate = 1.0;
    c.maxConcurrency = 4;
    MultiClassSimulator sim({c}, 2, 3.0);
    Rng r1(99), r2(99);
    const auto a = sim.run(500.0, r1);
    const auto b = sim.run(500.0, r2);
    EXPECT_EQ(a.beChunksCompleted, b.beChunksCompleted);
    ASSERT_EQ(a.lcSojournTimes[0].size(),
              b.lcSojournTimes[0].size());
    for (std::size_t i = 0; i < a.lcSojournTimes[0].size(); ++i) {
        EXPECT_DOUBLE_EQ(a.lcSojournTimes[0][i],
                         b.lcSojournTimes[0][i]);
    }
}

TEST(MultiClass, WarmupDiscardsEarlySamples)
{
    LcClassSpec c;
    c.arrivalRate = 5.0;
    c.serviceRate = 10.0;
    c.maxConcurrency = 2;
    MultiClassSimulator sim({c}, 2, 0.0);
    Rng r1(1), r2(1);
    const auto all = sim.run(1000.0, r1, 0.0);
    const auto trimmed = sim.run(1000.0, r2, 500.0);
    EXPECT_GT(all.lcSojournTimes[0].size(),
              trimmed.lcSojournTimes[0].size());
}

} // namespace

/**
 * @file
 * Tests for the request-level queue simulators, cross-validating the
 * analytic M/M/c formulas — the library's own consistency check
 * between its two modelling paths.
 */

#include <gtest/gtest.h>

#include "perf/queueing.hh"
#include "sim/queue_sim.hh"
#include "stats/percentile.hh"
#include "stats/rng.hh"
#include "stats/summary.hh"

namespace
{

using ahq::sim::MmcSimulator;
using ahq::sim::PrioritySimulator;
using ahq::stats::Rng;

TEST(MmcSimulator, ConservesRequests)
{
    MmcSimulator sim(2, 10.0, 8.0);
    Rng rng(1);
    const auto res = sim.run(200.0, rng);
    EXPECT_GT(res.arrivals, 0u);
    // All but the final in-flight requests complete (runAll drains).
    EXPECT_EQ(res.completions, res.arrivals);
}

TEST(MmcSimulator, MeanSojournMatchesAnalytic)
{
    const int c = 3;
    const double lambda = 2.0, mu = 1.0;
    MmcSimulator sim(c, lambda, mu);
    Rng rng(7);
    const auto res = sim.run(20000.0, rng, 100.0);
    const double analytic =
        ahq::perf::mmcMeanSojourn(c, lambda, mu);
    const double measured = ahq::stats::mean(res.sojournTimes);
    EXPECT_NEAR(measured / analytic, 1.0, 0.05);
}

class MmcCrossValidation
    : public ::testing::TestWithParam<std::tuple<int, double>>
{
};

TEST_P(MmcCrossValidation, P95MatchesAnalytic)
{
    const int c = std::get<0>(GetParam());
    const double rho = std::get<1>(GetParam());
    const double mu = 1.0;
    const double lambda = rho * c * mu;

    MmcSimulator sim(c, lambda, mu);
    Rng rng(42 + c);
    const auto res = sim.run(30000.0, rng, 200.0);
    ASSERT_GT(res.sojournTimes.size(), 1000u);

    const double analytic =
        ahq::perf::mmcSojournPercentile(c, lambda, mu, 0.95);
    const double measured =
        ahq::stats::exactPercentile(res.sojournTimes, 95.0);
    // Tail estimates near saturation have much higher sampling
    // variance (long autocorrelated busy periods).
    const double tol = rho >= 0.8 ? 0.20 : 0.08;
    EXPECT_NEAR(measured / analytic, 1.0, tol)
        << "c=" << c << " rho=" << rho;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MmcCrossValidation,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(0.3, 0.6, 0.85)));


TEST(MmcSimulator, BusyTimeMatchesUtilization)
{
    // Aggregate busy time / (servers * duration) ~ rho.
    const int c = 2;
    const double lambda = 1.2, mu = 1.0;
    MmcSimulator sim(c, lambda, mu);
    Rng rng(23);
    const double duration = 5000.0;
    const auto res = sim.run(duration, rng);
    const double rho = lambda / (c * mu);
    EXPECT_NEAR(res.busyTime / (c * duration), rho, 0.05);
}

TEST(MmcSimulator, ZeroArrivalsProducesNothing)
{
    MmcSimulator sim(2, 0.0, 1.0);
    Rng rng(3);
    const auto res = sim.run(100.0, rng);
    EXPECT_EQ(res.arrivals, 0u);
    EXPECT_TRUE(res.sojournTimes.empty());
}

TEST(PrioritySimulator, BeSaturatesIdleMachine)
{
    // With negligible LC load, BE throughput approaches servers *
    // chunk rate.
    PrioritySimulator sim(4, 0.01, 100.0, 5.0);
    Rng rng(11);
    const auto res = sim.run(2000.0, rng);
    EXPECT_NEAR(res.beThroughput(), 4 * 5.0, 1.0);
}

TEST(PrioritySimulator, LcPreemptionStealsBeThroughput)
{
    // LC load consuming ~half the machine halves BE throughput.
    const int servers = 4;
    const double lc_mu = 2.0;
    const double lc_lambda = 4.0; // utilisation = 4 / (4*2) = 0.5
    PrioritySimulator sim(servers, lc_lambda, lc_mu, 5.0);
    Rng rng(13);
    const auto res = sim.run(5000.0, rng);
    EXPECT_NEAR(res.beThroughput(), 0.5 * servers * 5.0,
                0.08 * servers * 5.0);
}

TEST(PrioritySimulator, LcLatencyShieldedFromBe)
{
    // LC p95 under preemptive priority with saturating BE work
    // matches the BE-free M/M/c within tolerance: the definition of
    // "LC apps take precedence" in the paper's LC-first baseline.
    const int servers = 4;
    const double lc_mu = 2.0, lc_lambda = 3.0;
    PrioritySimulator sim(servers, lc_lambda, lc_mu, 5.0);
    Rng rng(17);
    const auto res = sim.run(20000.0, rng);
    ASSERT_GT(res.lcSojournTimes.size(), 1000u);
    const double measured =
        ahq::stats::exactPercentile(res.lcSojournTimes, 95.0);
    const double analytic = ahq::perf::mmcSojournPercentile(
        servers, lc_lambda, lc_mu, 0.95);
    EXPECT_NEAR(measured / analytic, 1.0, 0.10);
}

TEST(PrioritySimulator, HigherLcLoadLowersBeThroughput)
{
    Rng rng1(19), rng2(19);
    PrioritySimulator lo(4, 1.0, 2.0, 5.0);
    PrioritySimulator hi(4, 6.0, 2.0, 5.0);
    const auto r_lo = lo.run(3000.0, rng1);
    const auto r_hi = hi.run(3000.0, rng2);
    EXPECT_GT(r_lo.beThroughput(), r_hi.beThroughput());
}

} // namespace

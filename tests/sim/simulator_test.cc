/**
 * @file
 * Tests for the discrete-event engine.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hh"

namespace
{

using ahq::sim::Simulator;

TEST(Simulator, StartsAtZero)
{
    Simulator sim;
    EXPECT_EQ(sim.now(), 0.0);
    EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(3.0, [&] { order.push_back(3); });
    sim.schedule(1.0, [&] { order.push_back(1); });
    sim.schedule(2.0, [&] { order.push_back(2); });
    sim.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), 3.0);
}

TEST(Simulator, FifoTieBreakAtSameTime)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        sim.schedule(1.0, [&order, i] { order.push_back(i); });
    sim.runAll();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, HandlersCanScheduleMoreEvents)
{
    Simulator sim;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 5)
            sim.scheduleAfter(1.0, chain);
    };
    sim.schedule(0.0, chain);
    sim.runAll();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(sim.now(), 4.0);
}

TEST(Simulator, RunUntilHorizonStopsEarly)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(1.0, [&] { ++fired; });
    sim.schedule(5.0, [&] { ++fired; });
    const auto executed = sim.run(2.0);
    EXPECT_EQ(executed, 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), 2.0);
    EXPECT_EQ(sim.pending(), 1u);
    sim.runAll();
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime)
{
    Simulator sim;
    double fired_at = -1.0;
    sim.schedule(2.0, [&] {
        sim.scheduleAfter(3.0, [&] { fired_at = sim.now(); });
    });
    sim.runAll();
    EXPECT_EQ(fired_at, 5.0);
}

TEST(Simulator, RunReturnsEventCount)
{
    Simulator sim;
    for (int i = 0; i < 7; ++i)
        sim.schedule(i, [] {});
    EXPECT_EQ(sim.runAll(), 7u);
}

TEST(Simulator, EmptyRunAdvancesClockToHorizon)
{
    Simulator sim;
    sim.run(10.0);
    EXPECT_EQ(sim.now(), 10.0);
}

} // namespace

/**
 * @file
 * Tests for bootstrap confidence intervals.
 */

#include <gtest/gtest.h>

#include "stats/bootstrap.hh"
#include "stats/summary.hh"

namespace
{

using namespace ahq::stats;

TEST(Bootstrap, EstimateIsPointStatistic)
{
    Rng rng(1);
    const std::vector<double> s{1.0, 2.0, 3.0, 4.0};
    const auto ci = bootstrapMeanCi(s, rng);
    EXPECT_NEAR(ci.estimate, 2.5, 1e-12);
    EXPECT_LE(ci.lo, ci.estimate);
    EXPECT_GE(ci.hi, ci.estimate);
}

TEST(Bootstrap, DegenerateSampleHasZeroWidth)
{
    Rng rng(2);
    const std::vector<double> s(20, 7.0);
    const auto ci = bootstrapMeanCi(s, rng);
    EXPECT_NEAR(ci.lo, 7.0, 1e-12);
    EXPECT_NEAR(ci.hi, 7.0, 1e-12);
    EXPECT_EQ(ci.halfWidth(), 0.0);
}

TEST(Bootstrap, CoverageOnGaussianData)
{
    // The 95% CI of the mean should contain the true mean roughly
    // 95% of the time; check a modest lower bound across trials.
    Rng meta(3);
    int covered = 0;
    const int trials = 100;
    for (int t = 0; t < trials; ++t) {
        std::vector<double> s;
        for (int i = 0; i < 60; ++i)
            s.push_back(meta.normal(10.0, 2.0));
        Rng rng(1000 + t);
        const auto ci = bootstrapMeanCi(s, rng, 0.95, 400);
        if (ci.contains(10.0))
            ++covered;
    }
    EXPECT_GE(covered, 85); // nominal 95, allow slack
}

TEST(Bootstrap, WiderConfidenceWiderInterval)
{
    Rng r1(4), r2(4);
    std::vector<double> s;
    Rng data(5);
    for (int i = 0; i < 50; ++i)
        s.push_back(data.exponential(1.0));
    const auto ci90 = bootstrapMeanCi(s, r1, 0.90);
    const auto ci99 = bootstrapMeanCi(s, r2, 0.99);
    EXPECT_GT(ci99.halfWidth(), ci90.halfWidth());
}

TEST(Bootstrap, CustomStatistic)
{
    Rng rng(6);
    std::vector<double> s;
    Rng data(7);
    for (int i = 0; i < 200; ++i)
        s.push_back(data.uniform());
    const auto ci = bootstrapCi(
        s,
        [](const std::vector<double> &v) {
            return ahq::stats::harmonicMean(v);
        },
        rng);
    // HM of U(0,1) samples is below the arithmetic mean.
    EXPECT_LT(ci.estimate, mean(s));
    EXPECT_GT(ci.estimate, 0.0);
}

TEST(Bootstrap, DeterministicForSeed)
{
    const std::vector<double> s{1.0, 5.0, 2.0, 8.0, 3.0};
    Rng r1(9), r2(9);
    const auto a = bootstrapMeanCi(s, r1);
    const auto b = bootstrapMeanCi(s, r2);
    EXPECT_DOUBLE_EQ(a.lo, b.lo);
    EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

} // namespace

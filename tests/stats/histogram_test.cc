/**
 * @file
 * Tests for the linear and log histograms.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/histogram.hh"
#include "stats/percentile.hh"
#include "stats/rng.hh"

namespace
{

using ahq::stats::Histogram;
using ahq::stats::LogHistogram;
using ahq::stats::Rng;

TEST(Histogram, CountsAndMean)
{
    Histogram h(0.0, 10.0, 10);
    h.add(1.0);
    h.add(2.0);
    h.add(3.0);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_NEAR(h.mean(), 2.0, 1e-12);
}

TEST(Histogram, UnderOverflowTracked)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-5.0);
    h.add(15.0);
    h.add(5.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, WeightedAdd)
{
    Histogram h(0.0, 10.0, 10);
    h.add(4.0, 10);
    EXPECT_EQ(h.count(), 10u);
    EXPECT_NEAR(h.mean(), 4.0, 1e-12);
    EXPECT_EQ(h.binCount(4), 10u);
}

TEST(Histogram, QuantileEmptyIsZero)
{
    Histogram h(0.0, 1.0, 4);
    EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, QuantileApproximatesExact)
{
    Histogram h(0.0, 1.0, 1000);
    Rng rng(5);
    std::vector<double> all;
    for (int i = 0; i < 50000; ++i) {
        const double x = rng.uniform();
        h.add(x);
        all.push_back(x);
    }
    for (double q : {0.5, 0.9, 0.95, 0.99}) {
        EXPECT_NEAR(h.quantile(q),
                    ahq::stats::exactPercentile(all, q * 100.0),
                    0.01);
    }
}

TEST(Histogram, EdgeValueJustBelowHiLandsInLastBin)
{
    Histogram h(0.0, 1.0, 10);
    h.add(0.9999999999);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, ResetClearsEverything)
{
    Histogram h(0.0, 1.0, 4);
    h.add(0.5);
    h.add(2.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
}

TEST(Histogram, BinEdges)
{
    Histogram h(2.0, 12.0, 5);
    EXPECT_NEAR(h.binLo(0), 2.0, 1e-12);
    EXPECT_NEAR(h.binLo(4), 10.0, 1e-12);
}

TEST(LogHistogram, QuantileOnWideRangeData)
{
    // Latencies spanning 1us..1s in seconds.
    LogHistogram h(1e-6, 1.0, 30);
    Rng rng(11);
    std::vector<double> all;
    for (int i = 0; i < 50000; ++i) {
        // Log-uniform data.
        const double x = std::pow(10.0, rng.uniform(-6.0, 0.0));
        h.add(x);
        all.push_back(x);
    }
    const double exact = ahq::stats::exactPercentile(all, 95.0);
    EXPECT_NEAR(h.quantile(0.95) / exact, 1.0, 0.1);
}

TEST(LogHistogram, CountAndReset)
{
    LogHistogram h(0.001, 1000.0, 10);
    h.add(1.0);
    h.add(10.0);
    EXPECT_EQ(h.count(), 2u);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0.0);
}

} // namespace

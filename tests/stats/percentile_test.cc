/**
 * @file
 * Tests for percentile estimators: the exact batch routine and the
 * streaming P-square estimator, validated against each other.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/percentile.hh"
#include "stats/rng.hh"

namespace
{

using ahq::stats::exactPercentile;
using ahq::stats::P2Quantile;
using ahq::stats::Rng;

TEST(ExactPercentile, EmptyIsZero)
{
    EXPECT_EQ(exactPercentile({}, 95.0), 0.0);
}

TEST(ExactPercentile, SingleSample)
{
    EXPECT_EQ(exactPercentile({42.0}, 0.0), 42.0);
    EXPECT_EQ(exactPercentile({42.0}, 95.0), 42.0);
}

TEST(ExactPercentile, MedianOfOddSet)
{
    EXPECT_EQ(exactPercentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(ExactPercentile, InterpolatesBetweenRanks)
{
    // Ranks 0..3 over [10,20,30,40]; p50 -> rank 1.5 -> 25.
    EXPECT_NEAR(exactPercentile({10, 20, 30, 40}, 50.0), 25.0, 1e-12);
}

TEST(ExactPercentile, ExtremesAreMinMax)
{
    const std::vector<double> v{5.0, 1.0, 9.0, 3.0};
    EXPECT_EQ(exactPercentile(v, 0.0), 1.0);
    EXPECT_EQ(exactPercentile(v, 100.0), 9.0);
}

TEST(ExactPercentile, UnsortedInputHandled)
{
    const std::vector<double> v{9, 1, 8, 2, 7, 3, 6, 4, 5};
    EXPECT_EQ(exactPercentile(v, 50.0), 5.0);
}

TEST(ExactPercentile, RejectsOutOfRangeP)
{
    EXPECT_THROW(exactPercentile({1.0, 2.0}, -0.001),
                 std::invalid_argument);
    EXPECT_THROW(exactPercentile({1.0, 2.0}, 100.001),
                 std::invalid_argument);
    EXPECT_THROW(exactPercentile({1.0, 2.0},
                                 std::nan("")),
                 std::invalid_argument);
}

TEST(ExactPercentile, RejectsNanSamples)
{
    EXPECT_THROW(exactPercentile({1.0, std::nan(""), 3.0}, 50.0),
                 std::invalid_argument);
}

TEST(ExactPercentile, P100NeverIndexesPastEnd)
{
    // p == 100 lands exactly on the last rank; any FP rounding up
    // must still clamp into the array.
    std::vector<double> v;
    for (int i = 0; i < 1000; ++i)
        v.push_back(static_cast<double>(i));
    EXPECT_EQ(exactPercentile(v, 100.0), 999.0);
    EXPECT_NEAR(exactPercentile(v, 99.999999999999), 999.0, 1e-6);
}

class P2QuantileParam : public ::testing::TestWithParam<double>
{
};

TEST_P(P2QuantileParam, TracksExactOnUniformData)
{
    const double q = GetParam();
    P2Quantile p2(q);
    Rng rng(123);
    std::vector<double> all;
    for (int i = 0; i < 20000; ++i) {
        const double x = rng.uniform();
        p2.add(x);
        all.push_back(x);
    }
    const double exact = exactPercentile(all, q * 100.0);
    EXPECT_NEAR(p2.value(), exact, 0.02);
}

TEST_P(P2QuantileParam, TracksExactOnHeavyTailData)
{
    const double q = GetParam();
    P2Quantile p2(q);
    Rng rng(321);
    std::vector<double> all;
    for (int i = 0; i < 20000; ++i) {
        const double x = rng.exponential(0.5);
        p2.add(x);
        all.push_back(x);
    }
    const double exact = exactPercentile(all, q * 100.0);
    EXPECT_NEAR(p2.value(), exact, 0.12 * exact + 0.05);
}

INSTANTIATE_TEST_SUITE_P(Quantiles, P2QuantileParam,
                         ::testing::Values(0.5, 0.9, 0.95, 0.99));

TEST(P2Quantile, FewSamplesFallBackToExact)
{
    P2Quantile p2(0.95);
    p2.add(3.0);
    p2.add(1.0);
    EXPECT_NEAR(p2.value(), exactPercentile({3.0, 1.0}, 95.0), 1e-12);
    EXPECT_EQ(p2.count(), 2u);
}

TEST(P2Quantile, EmptyIsZero)
{
    P2Quantile p2(0.95);
    EXPECT_EQ(p2.value(), 0.0);
    EXPECT_EQ(p2.count(), 0u);
}

TEST(P2Quantile, ResetClears)
{
    P2Quantile p2(0.9);
    for (int i = 0; i < 100; ++i)
        p2.add(i);
    p2.reset();
    EXPECT_EQ(p2.count(), 0u);
    EXPECT_EQ(p2.value(), 0.0);
}

TEST(P2Quantile, ConstantStreamStaysFinite)
{
    // Regression: a constant stream collapses adjacent marker
    // positions, which used to divide by zero inside the parabolic
    // and linear adjustment steps and poison the estimate with NaN.
    P2Quantile p2(0.95);
    for (int i = 0; i < 10000; ++i)
        p2.add(7.5);
    EXPECT_TRUE(std::isfinite(p2.value()));
    EXPECT_NEAR(p2.value(), 7.5, 1e-12);
    for (const double h : p2.markerHeights())
        EXPECT_EQ(h, 7.5);
}

TEST(P2Quantile, NearConstantStreamStaysFinite)
{
    // Long constant runs broken by rare outliers exercise the
    // duplicate-height paths without fully degenerate positions.
    P2Quantile p2(0.9);
    for (int i = 0; i < 5000; ++i)
        p2.add(i % 500 == 0 ? 100.0 : 1.0);
    EXPECT_TRUE(std::isfinite(p2.value()));
    EXPECT_GE(p2.value(), 1.0);
    EXPECT_LE(p2.value(), 100.0);
    const auto heights = p2.markerHeights();
    ASSERT_EQ(heights.size(), 5u);
    for (std::size_t i = 1; i < heights.size(); ++i)
        EXPECT_GE(heights[i], heights[i - 1]);
}

TEST(P2Quantile, MarkersHiddenBeforeInitialisation)
{
    // The first five samples sit unsorted in the height array, so
    // exposing them would fake monotonicity violations.
    P2Quantile p2(0.5);
    p2.add(3.0);
    p2.add(1.0);
    EXPECT_TRUE(p2.markerHeights().empty());
    EXPECT_TRUE(p2.markerPositions().empty());
}

TEST(P2Quantile, MonotoneUnderShiftedData)
{
    // Estimate on data shifted upward must not decrease.
    P2Quantile lo(0.95), hi(0.95);
    Rng rng(77);
    for (int i = 0; i < 5000; ++i) {
        const double x = rng.uniform();
        lo.add(x);
        hi.add(x + 10.0);
    }
    EXPECT_GT(hi.value(), lo.value());
    EXPECT_NEAR(hi.value() - 10.0, lo.value(), 0.05);
}

} // namespace

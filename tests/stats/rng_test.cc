/**
 * @file
 * Tests for the seeded random number generator.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "stats/rng.hh"

namespace
{

using ahq::stats::Rng;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(1234), b(1234);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.nextU64() == b.nextU64())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(99);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(-3.0, 7.0);
        EXPECT_GE(v, -3.0);
        EXPECT_LT(v, 7.0);
    }
}

TEST(Rng, UniformIntCoversRangeWithoutBias)
{
    Rng rng(11);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.uniformInt(10)];
    for (int c : counts)
        EXPECT_NEAR(c, n / 10, n / 10 * 0.15);
}

TEST(Rng, ExponentialMeanMatchesRate)
{
    Rng rng(21);
    const double rate = 4.0;
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.exponential(rate);
        EXPECT_GE(v, 0.0);
        sum += v;
    }
    EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(Rng, NormalMomentsMatch)
{
    Rng rng(33);
    const int n = 200000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal(2.0, 3.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 2.0, 0.05);
    EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(Rng, LognormalNoiseHasUnitMean)
{
    Rng rng(44);
    const int n = 200000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
        const double v = rng.lognormalNoise(0.2);
        EXPECT_GT(v, 0.0);
        sum += v;
    }
    EXPECT_NEAR(sum / n, 1.0, 0.01);
}

TEST(Rng, LognormalNoiseZeroSigmaIsIdentity)
{
    Rng rng(45);
    EXPECT_EQ(rng.lognormalNoise(0.0), 1.0);
    EXPECT_EQ(rng.lognormalNoise(-1.0), 1.0);
}

TEST(Rng, PoissonMeanMatchesSmall)
{
    Rng rng(55);
    const double mean = 3.5;
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(sum / n, mean, 0.05);
}

TEST(Rng, PoissonMeanMatchesLarge)
{
    Rng rng(56);
    const double mean = 500.0;
    const int n = 20000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(sum / n, mean, 2.0);
}

TEST(Rng, PoissonZeroMeanIsZero)
{
    Rng rng(57);
    EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, BernoulliFrequencyMatchesP)
{
    Rng rng(66);
    const int n = 100000;
    int heads = 0;
    for (int i = 0; i < n; ++i) {
        if (rng.bernoulli(0.3))
            ++heads;
    }
    EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

TEST(Rng, SplitStreamsAreIndependentAndStable)
{
    Rng parent(77);
    Rng c1 = parent.split(0);
    Rng c2 = parent.split(1);
    Rng c1_again = parent.split(0);
    // Same stream id yields the same stream.
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(c1.nextU64(), c1_again.nextU64());
    // Different stream ids diverge.
    Rng d1 = parent.split(0);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (d1.nextU64() == c2.nextU64())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, SplitDoesNotAdvanceParent)
{
    Rng a(88), b(88);
    (void)a.split(42);
    EXPECT_EQ(a.nextU64(), b.nextU64());
}

} // namespace

/**
 * @file
 * Tests for Welford running statistics and the EWMA.
 */

#include <gtest/gtest.h>

#include "stats/rng.hh"
#include "stats/running.hh"

namespace
{

using ahq::stats::Ewma;
using ahq::stats::Rng;
using ahq::stats::RunningStats;

TEST(RunningStats, EmptyIsZeroed)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, BasicMoments)
{
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_NEAR(s.mean(), 5.0, 1e-12);
    // Sample variance of the classic data set is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.sum(), 40.0, 1e-9);
}

TEST(RunningStats, SingleSampleVarianceZero)
{
    RunningStats s;
    s.add(3.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential)
{
    Rng rng(42);
    RunningStats all, a, b;
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.normal(5.0, 2.0);
        all.add(v);
        (i % 2 == 0 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_EQ(a.min(), all.min());
    EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a, b;
    a.add(1.0);
    a.add(2.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_NEAR(b.mean(), 1.5, 1e-12);
}

TEST(RunningStats, ResetClears)
{
    RunningStats s;
    s.add(10.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(Ewma, FirstSampleSeeds)
{
    Ewma e(0.1);
    EXPECT_FALSE(e.seeded());
    e.add(5.0);
    EXPECT_TRUE(e.seeded());
    EXPECT_EQ(e.value(), 5.0);
}

TEST(Ewma, ConvergesToConstantInput)
{
    Ewma e(0.2);
    e.add(0.0);
    for (int i = 0; i < 100; ++i)
        e.add(10.0);
    EXPECT_NEAR(e.value(), 10.0, 1e-6);
}

TEST(Ewma, AlphaOneTracksLastSample)
{
    Ewma e(1.0);
    e.add(1.0);
    e.add(42.0);
    EXPECT_EQ(e.value(), 42.0);
}

TEST(Ewma, SmoothsNoise)
{
    Rng rng(8);
    Ewma e(0.05);
    for (int i = 0; i < 5000; ++i)
        e.add(3.0 + rng.normal(0.0, 1.0));
    EXPECT_NEAR(e.value(), 3.0, 0.5);
}

TEST(Ewma, ResetClears)
{
    Ewma e(0.5);
    e.add(1.0);
    e.reset();
    EXPECT_FALSE(e.seeded());
    EXPECT_EQ(e.value(), 0.0);
}

} // namespace

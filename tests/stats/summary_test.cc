/**
 * @file
 * Tests for batch sample summaries and mean variants.
 */

#include <gtest/gtest.h>

#include "stats/summary.hh"

namespace
{

using ahq::stats::geometricMean;
using ahq::stats::harmonicMean;
using ahq::stats::mean;
using ahq::stats::SampleSummary;
using ahq::stats::summarize;

TEST(Summary, EmptyBatch)
{
    const SampleSummary s = summarize({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.mean, 0.0);
    EXPECT_EQ(s.p95, 0.0);
}

TEST(Summary, BasicBatch)
{
    std::vector<double> v;
    for (int i = 1; i <= 100; ++i)
        v.push_back(i);
    const SampleSummary s = summarize(v);
    EXPECT_EQ(s.count, 100u);
    EXPECT_NEAR(s.mean, 50.5, 1e-9);
    EXPECT_EQ(s.min, 1.0);
    EXPECT_EQ(s.max, 100.0);
    EXPECT_NEAR(s.p50, 50.5, 1e-9);
    EXPECT_NEAR(s.p95, 95.05, 1e-9);
    EXPECT_NEAR(s.p99, 99.01, 1e-9);
}

TEST(Summary, ToStringContainsFields)
{
    const SampleSummary s = summarize({1.0, 2.0, 3.0});
    const std::string str = s.toString();
    EXPECT_NE(str.find("n=3"), std::string::npos);
    EXPECT_NE(str.find("mean=2"), std::string::npos);
}

TEST(Means, Arithmetic)
{
    EXPECT_EQ(mean({}), 0.0);
    EXPECT_NEAR(mean({1.0, 2.0, 3.0}), 2.0, 1e-12);
}

TEST(Means, Harmonic)
{
    EXPECT_EQ(harmonicMean({}), 0.0);
    // HM of {1, 2, 4} = 3 / (1 + 0.5 + 0.25) = 12/7.
    EXPECT_NEAR(harmonicMean({1.0, 2.0, 4.0}), 12.0 / 7.0, 1e-12);
}

TEST(Means, Geometric)
{
    EXPECT_EQ(geometricMean({}), 0.0);
    EXPECT_NEAR(geometricMean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(Means, InequalityChain)
{
    // HM <= GM <= AM for positive data.
    const std::vector<double> v{0.5, 1.5, 2.5, 4.0};
    EXPECT_LE(harmonicMean(v), geometricMean(v) + 1e-12);
    EXPECT_LE(geometricMean(v), mean(v) + 1e-12);
}

} // namespace

/**
 * @file
 * Tests for the Zipf sampler.
 */

#include <gtest/gtest.h>

#include <vector>

#include "stats/rng.hh"
#include "stats/zipf.hh"

namespace
{

using ahq::stats::Rng;
using ahq::stats::ZipfDistribution;

TEST(Zipf, PmfSumsToOne)
{
    ZipfDistribution z(1000, 0.9);
    double sum = 0.0;
    for (std::uint64_t r = 1; r <= z.size(); ++r)
        sum += z.pmf(r);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, PmfMonotoneDecreasing)
{
    ZipfDistribution z(100, 1.1);
    for (std::uint64_t r = 2; r <= z.size(); ++r)
        EXPECT_LE(z.pmf(r), z.pmf(r - 1));
}

TEST(Zipf, ZeroSkewIsUniform)
{
    ZipfDistribution z(50, 0.0);
    for (std::uint64_t r = 1; r <= 50; ++r)
        EXPECT_NEAR(z.pmf(r), 1.0 / 50.0, 1e-12);
}

TEST(Zipf, SamplesInRange)
{
    ZipfDistribution z(42, 0.8);
    Rng rng(1);
    for (int i = 0; i < 10000; ++i) {
        const auto r = z.sample(rng);
        EXPECT_GE(r, 1u);
        EXPECT_LE(r, 42u);
    }
}

TEST(Zipf, EmpiricalFrequenciesMatchPmf)
{
    ZipfDistribution z(20, 1.0);
    Rng rng(9);
    std::vector<int> counts(21, 0);
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        ++counts[z.sample(rng)];
    for (std::uint64_t r = 1; r <= 20; ++r) {
        const double expected = z.pmf(r) * n;
        EXPECT_NEAR(counts[r], expected, 0.05 * n * z.pmf(1));
    }
}

TEST(Zipf, SingleItemAlwaysRankOne)
{
    ZipfDistribution z(1, 1.5);
    Rng rng(3);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(z.sample(rng), 1u);
    EXPECT_NEAR(z.pmf(1), 1.0, 1e-12);
}

TEST(Zipf, SampleAtBoundaryDraws)
{
    ZipfDistribution z(10, 1.0);
    // u == 0.0 is the first rank; u == 1.0 must land on the last
    // rank, not one past the table (the cdf's final entry is pinned
    // to exactly 1.0 so lower_bound finds it).
    EXPECT_EQ(z.sampleAt(0.0), 1u);
    EXPECT_EQ(z.sampleAt(1.0), 10u);
    // Even an out-of-contract draw past 1.0 clamps to rank n
    // instead of indexing off the end.
    EXPECT_EQ(z.sampleAt(1.5), 10u);
}

TEST(Zipf, SampleAtPmfBoundaries)
{
    ZipfDistribution z(100, 0.8);
    const double p1 = z.pmf(1);
    // Just inside rank 1's mass vs just past it.
    EXPECT_EQ(z.sampleAt(p1 - 1e-12), 1u);
    EXPECT_EQ(z.sampleAt(p1 + 1e-12), 2u);
}

TEST(Zipf, SampleAtSingleItem)
{
    ZipfDistribution z(1, 0.0);
    EXPECT_EQ(z.sampleAt(0.0), 1u);
    EXPECT_EQ(z.sampleAt(0.5), 1u);
    EXPECT_EQ(z.sampleAt(1.0), 1u);
}

TEST(Zipf, PmfSumsToOneAcrossSizesAndSkews)
{
    for (std::uint64_t n : {std::uint64_t{2}, std::uint64_t{7},
                            std::uint64_t{1000}}) {
        for (double s : {0.0, 0.8, 1.0}) {
            ZipfDistribution z(n, s);
            double sum = 0.0;
            for (std::uint64_t r = 1; r <= n; ++r)
                sum += z.pmf(r);
            EXPECT_NEAR(sum, 1.0, 1e-9) << "n=" << n << " s=" << s;
        }
    }
}

TEST(Zipf, HigherSkewConcentratesHead)
{
    ZipfDistribution mild(100, 0.5);
    ZipfDistribution steep(100, 1.5);
    EXPECT_GT(steep.pmf(1), mild.pmf(1));
    EXPECT_LT(steep.pmf(100), mild.pmf(100));
}

} // namespace

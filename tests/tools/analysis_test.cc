/**
 * @file
 * Tests for the analysis subcommands riding the span profiler:
 * `ahq profile` (tree output, epoch-count consistency, no partial
 * output on malformed traces), `ahq report` (JSON and Markdown),
 * `ahq bench-diff` (regression gate), sweep --profile trace
 * byte-identity across --jobs, and the --profile flag plumbing.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli.hh"
#include "obs/trace_reader.hh"

namespace
{

using namespace ahq::cli;

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "ahq_analysis_" + name;
}

/** dispatch() wrapper collecting stdout/stderr. */
struct CliResult
{
    int code;
    std::string out;
    std::string err;
};

CliResult
run(const std::vector<std::string> &argv)
{
    std::ostringstream out, err;
    const int code = dispatch(argv, out, err);
    return {code, out.str(), err.str()};
}

TEST(CliParse, ProfileFlag)
{
    EXPECT_FALSE(
        parseSimulateArgs({"xapian=0.5", "stream"}).profile);
    EXPECT_TRUE(parseSimulateArgs(
                    {"--profile", "xapian=0.5", "stream"})
                    .profile);
    // --profile takes no value.
    EXPECT_THROW((void)parseSimulateArgs(
                     {"--profile=yes", "xapian=0.5"}),
                 std::invalid_argument);
}

TEST(Profile, TreeCountsMatchTheSimulatedEpochs)
{
    const std::string trace = tmpPath("prof.jsonl");
    const auto sim = run({"simulate", "--duration", "5",
                          "--warmup", "0", "--profile", "--trace",
                          trace, "xapian=0.5", "stream"});
    ASSERT_EQ(sim.code, 0) << sim.err;
    // The console summary contains the tree.
    EXPECT_NE(sim.out.find("profile (span tree):"),
              std::string::npos);

    // duration 5 s at the default 0.5 s epoch = 10 epochs.
    const auto prof = run({"profile", trace});
    ASSERT_EQ(prof.code, 0) << prof.err;
    EXPECT_NE(prof.out.find("scenario ARQ"), std::string::npos);

    // Cross-check the span events directly: run count 1, epoch
    // count == the run's epoch count, child totals <= parent.
    long long epochs = 0;
    double run_total = -1.0, epoch_total = -1.0;
    long long epoch_count = -1, run_count = -1;
    ahq::obs::forEachTraceFile(
        trace, [&](const ahq::obs::TraceEvent &ev, int) {
            if (ev.type() == "epoch")
                ++epochs;
            if (ev.type() != "span")
                return;
            if (ev.str("path") == "run") {
                run_count =
                    static_cast<long long>(ev.num("count"));
                run_total = ev.num("total_ms");
            } else if (ev.str("path") == "run/epoch") {
                epoch_count =
                    static_cast<long long>(ev.num("count"));
                epoch_total = ev.num("total_ms");
            }
        });
    EXPECT_EQ(epochs, 10);
    EXPECT_EQ(run_count, 1);
    EXPECT_EQ(epoch_count, epochs);
    ASSERT_GE(run_total, 0.0); // simulate --profile -> wallClock
    EXPECT_LE(epoch_total, run_total);
    std::remove(trace.c_str());
}

TEST(Profile, MalformedTraceExitsOneWithLineNumberAndNoTable)
{
    const std::string trace = tmpPath("malformed.jsonl");
    {
        std::ofstream f(trace);
        f << "{\"v\":1,\"type\":\"span\",\"scenario\":\"s\","
             "\"path\":\"run\",\"name\":\"run\",\"depth\":0,"
             "\"count\":1}\n";
        f << "{\"v\":1,\"type\":\"span\",\"truncat\n";
    }
    const auto res = run({"profile", trace});
    EXPECT_EQ(res.code, 1);
    EXPECT_NE(res.err.find("line 2"), std::string::npos)
        << res.err;
    // No partial summary on stdout.
    EXPECT_TRUE(res.out.empty()) << res.out;
    std::remove(trace.c_str());
}

TEST(Profile, UsageAndUnsupportedInputs)
{
    EXPECT_EQ(run({"profile"}).code, 2);
    EXPECT_EQ(run({"profile", "/nonexistent/x.jsonl"}).code, 1);

    // A trace without span events is a loud error, not an empty
    // table.
    const std::string trace = tmpPath("nospans.jsonl");
    {
        std::ofstream f(trace);
        f << "{\"v\":1,\"type\":\"epoch\",\"scenario\":\"s\","
             "\"e_s\":0.5}\n";
    }
    const auto res = run({"profile", trace});
    EXPECT_EQ(res.code, 1);
    EXPECT_NE(res.err.find("no span events"), std::string::npos);
    std::remove(trace.c_str());
}

TEST(Trace, MalformedTraceExitsOneWithLineNumberAndNoOutput)
{
    const std::string trace = tmpPath("trace_bad.jsonl");
    {
        std::ofstream f(trace);
        f << "{\"v\":1,\"type\":\"epoch\",\"scenario\":\"s\","
             "\"e_s\":0.1}\n";
        f << "not json at all\n";
    }
    const auto res = run({"trace", trace});
    EXPECT_EQ(res.code, 1);
    EXPECT_NE(res.err.find("line 2"), std::string::npos)
        << res.err;
    EXPECT_TRUE(res.out.empty()) << res.out;
    std::remove(trace.c_str());
}

TEST(Sweep, ProfiledTracesAreByteIdenticalAcrossJobs)
{
    const std::string t1 = tmpPath("sweep_j1.jsonl");
    const std::string t4 = tmpPath("sweep_j4.jsonl");
    const std::vector<std::string> base{
        "sweep", "--duration", "2", "--warmup", "0", "--profile",
        "xapian=0.5", "stream"};
    auto with = [&](const std::string &trace,
                    const std::string &jobs) {
        auto argv = base;
        argv.insert(argv.begin() + 1, {"--trace", trace, "--jobs",
                                       jobs});
        return run(argv);
    };
    ASSERT_EQ(with(t1, "1").code, 0);
    ASSERT_EQ(with(t4, "4").code, 0);

    std::ifstream f1(t1), f4(t4);
    const std::string c1((std::istreambuf_iterator<char>(f1)),
                         std::istreambuf_iterator<char>());
    const std::string c4((std::istreambuf_iterator<char>(f4)),
                         std::istreambuf_iterator<char>());
    EXPECT_FALSE(c1.empty());
    EXPECT_EQ(c1, c4);
    // Spans present, timing fields absent (wallClock off).
    EXPECT_NE(c1.find("\"type\":\"span\""), std::string::npos);
    EXPECT_EQ(c1.find("total_ms"), std::string::npos);
    std::remove(t1.c_str());
    std::remove(t4.c_str());
}

TEST(Report, FoldsTracesAndBenchFilesIntoJsonAndMarkdown)
{
    const std::string trace = tmpPath("report_trace.jsonl");
    const auto sim = run({"simulate", "--duration", "3",
                          "--warmup", "0", "--profile", "--trace",
                          trace, "xapian=0.5", "stream"});
    ASSERT_EQ(sim.code, 0) << sim.err;

    const std::string benchf = tmpPath("BENCH_x.json");
    {
        std::ofstream f(benchf);
        f << "{\"type\":\"bench\",\"benchmark\":\"b1\","
             "\"wall_ms\":10,\"throughput\":100,"
             "\"unit\":\"eps\",\"config\":\"c\","
             "\"git_rev\":\"r\"}\n";
    }

    const auto js = run({"report", trace, benchf});
    ASSERT_EQ(js.code, 0) << js.err;
    // The JSON report names the tool and carries both sections.
    // (It nests objects, so the flat trace parser can't read it.)
    EXPECT_NE(js.out.find("\"tool\":\"ahq report\""),
              std::string::npos)
        << js.out;
    EXPECT_NE(js.out.find("\"runs\":["), std::string::npos);
    EXPECT_NE(js.out.find("\"bench\":["), std::string::npos);
    EXPECT_NE(js.out.find("\"b1\""), std::string::npos);

    const auto md = run({"report", "--format=md", trace, benchf});
    ASSERT_EQ(md.code, 0) << md.err;
    EXPECT_NE(md.out.find("## Runs"), std::string::npos);
    EXPECT_NE(md.out.find("## Benchmarks"), std::string::npos);
    EXPECT_NE(md.out.find("b1"), std::string::npos);

    // -o FILE writes the report instead of stdout.
    const std::string outf = tmpPath("report.json");
    const auto filed =
        run({"report", "-o", outf, trace, benchf});
    ASSERT_EQ(filed.code, 0) << filed.err;
    std::ifstream f(outf);
    EXPECT_TRUE(f.is_open());

    EXPECT_EQ(run({"report"}).code, 2);
    EXPECT_EQ(run({"report", "--format=xml", trace}).code, 2);
    EXPECT_EQ(run({"report", "/nonexistent/x.jsonl"}).code, 1);

    std::remove(trace.c_str());
    std::remove(benchf.c_str());
    std::remove(outf.c_str());
}

TEST(BenchDiff, FlagsRegressionsBeyondThreshold)
{
    const std::string oldf = tmpPath("BENCH_old.json");
    const std::string newf = tmpPath("BENCH_new.json");
    auto write = [](const std::string &path, double wall,
                    double thru) {
        std::ofstream f(path);
        f << "{\"type\":\"bench\",\"benchmark\":\"b\","
             "\"wall_ms\":"
          << wall << ",\"throughput\":" << thru
          << ",\"unit\":\"eps\",\"config\":\"c\","
             "\"git_rev\":\"r\"}\n";
    };

    // Identical -> clean exit.
    write(oldf, 100.0, 1000.0);
    write(newf, 100.0, 1000.0);
    EXPECT_EQ(run({"bench-diff", oldf, newf}).code, 0);

    // 25% slower -> regression, exit 1, row flagged.
    write(newf, 125.0, 1000.0);
    const auto slow = run({"bench-diff", oldf, newf});
    EXPECT_EQ(slow.code, 1);
    EXPECT_NE(slow.out.find("REGRESSION"), std::string::npos);

    // The same delta passes a 30% threshold.
    EXPECT_EQ(
        run({"bench-diff", "--threshold=0.3", oldf, newf}).code,
        0);

    // Throughput drop alone is also a regression.
    write(newf, 100.0, 800.0);
    EXPECT_EQ(run({"bench-diff", oldf, newf}).code, 1);

    // Usage / parse errors exit 2.
    EXPECT_EQ(run({"bench-diff", oldf}).code, 2);
    EXPECT_EQ(run({"bench-diff", "--threshold=zz", oldf, newf})
                  .code,
              2);
    EXPECT_EQ(
        run({"bench-diff", oldf, "/nonexistent/b.json"}).code, 2);

    std::remove(oldf.c_str());
    std::remove(newf.c_str());
}

TEST(BenchDiff, ReportsSpeedupsAndBaselineSelection)
{
    const std::string oldf = tmpPath("BENCH_base.json");
    const std::string newf = tmpPath("BENCH_run.json");
    auto write = [](const std::string &path, double wall,
                    double thru) {
        std::ofstream f(path);
        f << "{\"type\":\"bench\",\"benchmark\":\"b\","
             "\"wall_ms\":"
          << wall << ",\"throughput\":" << thru
          << ",\"unit\":\"eps\",\"config\":\"c\","
             "\"git_rev\":\"r\"}\n";
    };

    // 2x throughput -> a per-row speedup ratio plus the geomean
    // footer, and still a clean exit.
    write(oldf, 100.0, 1000.0);
    write(newf, 50.0, 2000.0);
    const auto fast = run({"bench-diff", oldf, newf});
    EXPECT_EQ(fast.code, 0) << fast.err;
    EXPECT_NE(fast.out.find("2.00x"), std::string::npos)
        << fast.out;
    EXPECT_NE(fast.out.find("geomean speedup"), std::string::npos)
        << fast.out;

    // --baseline <old> plus one positional is the same comparison.
    const auto sel = run({"bench-diff", "--baseline", oldf, newf});
    EXPECT_EQ(sel.code, 0) << sel.err;
    EXPECT_EQ(sel.out, fast.out);
    const auto eq =
        run({"bench-diff", "--baseline=" + oldf, newf});
    EXPECT_EQ(eq.out, fast.out);

    // A regression under --baseline still gates (exit 1).
    write(newf, 200.0, 500.0);
    EXPECT_EQ(run({"bench-diff", "--baseline", oldf, newf}).code,
              1);

    // --baseline with two positionals is ambiguous -> usage error.
    EXPECT_EQ(
        run({"bench-diff", "--baseline", oldf, oldf, newf}).code,
        2);
    EXPECT_EQ(run({"bench-diff", "--baseline"}).code, 2);

    std::remove(oldf.c_str());
    std::remove(newf.c_str());
}

TEST(CliParse, TraceSampleFlag)
{
    EXPECT_DOUBLE_EQ(parseSimulateArgs({"xapian=0.5", "stream"})
                         .traceSampleRate,
                     1.0);
    EXPECT_DOUBLE_EQ(
        parseSimulateArgs(
            {"--trace-sample", "0.25", "xapian=0.5", "stream"})
            .traceSampleRate,
        0.25);
    EXPECT_DOUBLE_EQ(parseSimulateArgs({"--trace-sample=0.5",
                                        "xapian=0.5", "stream"})
                         .traceSampleRate,
                     0.5);
    // The rate is a probability: out-of-range values are rejected
    // at parse time, not clamped.
    EXPECT_THROW((void)parseSimulateArgs({"--trace-sample", "1.5",
                                          "xapian=0.5", "stream"}),
                 std::invalid_argument);
    EXPECT_THROW((void)parseSimulateArgs({"--trace-sample", "-0.1",
                                          "xapian=0.5", "stream"}),
                 std::invalid_argument);
    EXPECT_THROW((void)parseSimulateArgs({"--trace-sample", "zz",
                                          "xapian=0.5", "stream"}),
                 std::invalid_argument);
}

TEST(Timeline, RendersSparklinesCsvAndJsonFromATracedRun)
{
    const std::string trace = tmpPath("timeline.jsonl");
    const auto sim = run({"simulate", "--duration", "5",
                          "--warmup", "0", "--trace", trace,
                          "xapian=0.5", "stream"});
    ASSERT_EQ(sim.code, 0) << sim.err;

    // Text mode: per-(scenario, series) blocks with a stats line
    // and an aligned sparkline between pipes.
    const auto text = run({"timeline", trace});
    ASSERT_EQ(text.code, 0) << text.err;
    EXPECT_NE(text.out.find("ARQ :: e_s"), std::string::npos)
        << text.out;
    EXPECT_NE(text.out.find("p99="), std::string::npos);
    EXPECT_NE(text.out.find("  |"), std::string::npos);

    // --series filters down to the named series only.
    const auto only =
        run({"timeline", "--series", "e_s", trace});
    ASSERT_EQ(only.code, 0) << only.err;
    EXPECT_NE(only.out.find(":: e_s"), std::string::npos);
    EXPECT_EQ(only.out.find(":: e_lc"), std::string::npos)
        << only.out;

    const auto csv = run({"timeline", "--format=csv", trace});
    ASSERT_EQ(csv.code, 0) << csv.err;
    EXPECT_EQ(csv.out.rfind("scenario,series,bucket,epoch_lo,"
                            "stride,count,min,max,mean\n",
                            0),
              0u)
        << csv.out;
    EXPECT_NE(csv.out.find("ARQ,e_s,0,0,"), std::string::npos)
        << csv.out;

    const auto js = run({"timeline", "--format=json", trace});
    ASSERT_EQ(js.code, 0) << js.err;
    EXPECT_EQ(js.out.rfind("{\"v\":1,\"series\":[", 0), 0u)
        << js.out;
    EXPECT_NE(js.out.find("\"series\":\"e_s\""),
              std::string::npos);
    EXPECT_NE(js.out.find("\"markers\":["), std::string::npos);
    std::remove(trace.c_str());
}

TEST(Timeline, ChaosTimelineByteIdenticalAcrossJobsUnderSampling)
{
    const std::string t1 = tmpPath("chaos_tl_j1.jsonl");
    const std::string t8 = tmpPath("chaos_tl_j8.jsonl");
    auto with = [&](const std::string &trace,
                    const std::string &jobs) {
        return run({"chaos", "--duration", "10", "--warmup", "2",
                    "--seed", "5", "--trace-sample", "0.5",
                    "--trace", trace, "--jobs", jobs});
    };
    const auto r1 = with(t1, "1");
    ASSERT_EQ(r1.code, 0) << r1.err;
    const auto r8 = with(t8, "8");
    ASSERT_EQ(r8.code, 0) << r8.err;

    std::ifstream f1(t1), f8(t8);
    const std::string c1((std::istreambuf_iterator<char>(f1)),
                         std::istreambuf_iterator<char>());
    const std::string c8((std::istreambuf_iterator<char>(f8)),
                         std::istreambuf_iterator<char>());
    ASSERT_FALSE(c1.empty());
    EXPECT_EQ(c1, c8);
    // Sampling is advertised in the header and the folded series
    // (recorded every epoch, never sampled) close the trace.
    EXPECT_NE(c1.find("\"trace_sample\":0.5"), std::string::npos);
    EXPECT_NE(c1.find("\"type\":\"series\""), std::string::npos);

    // Rendering the two traces gives the same bytes, with the
    // chaos plan's faults showing up in the marker row.
    const auto tl1 = run({"timeline", t1});
    const auto tl8 = run({"timeline", t8});
    ASSERT_EQ(tl1.code, 0) << tl1.err;
    // The first line names the input file; everything after it
    // must match byte for byte.
    const auto body = [](const std::string &s) {
        return s.substr(s.find('\n'));
    };
    EXPECT_EQ(body(tl1.out), body(tl8.out));
    EXPECT_NE(tl1.out.find("x=fault"), std::string::npos)
        << tl1.out;
    std::remove(t1.c_str());
    std::remove(t8.c_str());
}

TEST(Timeline, UsageAndErrorPaths)
{
    EXPECT_EQ(run({"timeline"}).code, 2);
    EXPECT_EQ(run({"timeline", "--format=xml", "x.jsonl"}).code,
              2);
    EXPECT_EQ(run({"timeline", "--width=4", "x.jsonl"}).code, 2);
    EXPECT_EQ(run({"timeline", "/nonexistent/x.jsonl"}).code, 1);

    // A trace without series events is a loud error with a hint,
    // not an empty rendering.
    const std::string trace = tmpPath("noseries.jsonl");
    {
        std::ofstream f(trace);
        f << "{\"v\":1,\"type\":\"epoch\",\"scenario\":\"s\","
             "\"e_s\":0.5}\n";
    }
    const auto res = run({"timeline", trace});
    EXPECT_EQ(res.code, 1);
    EXPECT_NE(res.err.find("no matching series"),
              std::string::npos)
        << res.err;
    std::remove(trace.c_str());
}

TEST(Report, FoldsSeriesEventsIntoEsColumns)
{
    const std::string trace = tmpPath("report_series.jsonl");
    const auto sim = run({"simulate", "--duration", "4",
                          "--warmup", "0", "--trace", trace,
                          "xapian=0.5", "stream"});
    ASSERT_EQ(sim.code, 0) << sim.err;

    const auto js = run({"report", trace});
    ASSERT_EQ(js.code, 0) << js.err;
    EXPECT_NE(js.out.find("\"es_min\":"), std::string::npos)
        << js.out;
    EXPECT_NE(js.out.find("\"es_max\":"), std::string::npos);
    EXPECT_NE(js.out.find("\"es_p99\":"), std::string::npos);

    const auto md = run({"report", "--format=md", trace});
    ASSERT_EQ(md.code, 0) << md.err;
    EXPECT_NE(md.out.find("E_S p99"), std::string::npos) << md.out;
    std::remove(trace.c_str());
}

TEST(Usage, MentionsTheNewSubcommands)
{
    const auto res = run({"help"});
    EXPECT_EQ(res.code, 0);
    EXPECT_NE(res.out.find("profile <file.jsonl>"),
              std::string::npos);
    EXPECT_NE(res.out.find("report [opts]"), std::string::npos);
    EXPECT_NE(res.out.find("bench-diff"), std::string::npos);
    EXPECT_NE(res.out.find("--profile"), std::string::npos);
    EXPECT_NE(res.out.find("timeline [opts]"), std::string::npos);
    EXPECT_NE(res.out.find("--trace-sample"), std::string::npos);
}

} // namespace

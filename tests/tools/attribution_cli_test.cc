/**
 * @file
 * CLI tests for the interference-attribution tooling: the
 * --attribute / --slo simulate flags, `ahq why` (blame ledger from
 * a trace, text/csv/json), `ahq alerts` (burn-rate transitions and
 * totals), and the `ahq trace` reader footer with its
 * blank/unknown-line accounting.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli.hh"

namespace
{

using namespace ahq::cli;

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "ahq_attr_cli_" + name;
}

struct CliResult
{
    int code;
    std::string out;
    std::string err;
};

CliResult
run(const std::vector<std::string> &argv)
{
    std::ostringstream out, err;
    const int code = dispatch(argv, out, err);
    return {code, out.str(), err.str()};
}

/** One traced, attributed, alerted reference run. */
std::string
attributedTrace(const std::string &name)
{
    const std::string trace = tmpPath(name);
    const auto sim = run({"simulate", "--strategy", "Unmanaged",
                          "--duration", "20", "--warmup", "4",
                          "--attribute", "--slo", "--trace", trace,
                          "xapian=0.5", "stream"});
    EXPECT_EQ(sim.code, 0) << sim.err;
    return trace;
}

TEST(CliParse, AttributeAndSloFlags)
{
    EXPECT_FALSE(
        parseSimulateArgs({"xapian=0.5", "stream"}).attribute);
    EXPECT_FALSE(parseSimulateArgs({"xapian=0.5", "stream"}).slo);
    const auto opt = parseSimulateArgs(
        {"--attribute", "--slo", "xapian=0.5", "stream"});
    EXPECT_TRUE(opt.attribute);
    EXPECT_TRUE(opt.slo);
    // Boolean flags take no value.
    EXPECT_THROW(
        (void)parseSimulateArgs({"--attribute=yes", "xapian=0.5"}),
        std::invalid_argument);
    EXPECT_THROW(
        (void)parseSimulateArgs({"--slo=on", "xapian=0.5"}),
        std::invalid_argument);
}

TEST(Simulate, AttributePrintsBlameTableAndSloSummary)
{
    const std::string trace = attributedTrace("sim.jsonl");
    const auto sim = run({"simulate", "--strategy", "Unmanaged",
                          "--duration", "20", "--warmup", "4",
                          "--attribute", "--slo", "xapian=0.5",
                          "stream"});
    ASSERT_EQ(sim.code, 0) << sim.err;
    EXPECT_NE(sim.out.find("interference attribution"),
              std::string::npos);
    EXPECT_NE(sim.out.find("stream"), std::string::npos);
    EXPECT_NE(sim.out.find("slo: raises ="), std::string::npos);
    std::remove(trace.c_str());
}

TEST(Why, NamesTheBandwidthHogInEveryFormat)
{
    const std::string trace = attributedTrace("why.jsonl");

    const auto text = run({"why", trace});
    ASSERT_EQ(text.code, 0) << text.err;
    EXPECT_NE(text.out.find("xapian"), std::string::npos);
    EXPECT_NE(text.out.find("stream"), std::string::npos);
    EXPECT_NE(text.out.find("bandwidth"), std::string::npos);
    EXPECT_NE(text.out.find("per-victim summed R_i:"),
              std::string::npos);

    const auto csv = run({"why", "--format=csv", trace});
    ASSERT_EQ(csv.code, 0) << csv.err;
    EXPECT_EQ(csv.out.rfind("victim,culprit,resource,share,epochs",
                            0),
              0u);
    EXPECT_NE(csv.out.find("xapian,stream,"), std::string::npos);

    // --top=1 keeps the single largest row after the header.
    const auto top = run({"why", "--format=csv", "--top=1", trace});
    ASSERT_EQ(top.code, 0) << top.err;
    int lines = 0;
    for (const char c : top.out)
        lines += c == '\n' ? 1 : 0;
    EXPECT_EQ(lines, 2);

    const auto json = run({"why", "--format=json", trace});
    ASSERT_EQ(json.code, 0) << json.err;
    EXPECT_NE(json.out.find("\"tool\":\"ahq why\""),
              std::string::npos);
    EXPECT_NE(json.out.find("\"victim\":\"xapian\""),
              std::string::npos);

    // Filters that match nothing fail loudly.
    const auto none = run({"why", "--app=masstree", trace});
    EXPECT_EQ(none.code, 1);
    EXPECT_NE(none.err.find("no matching attribution events"),
              std::string::npos);
    std::remove(trace.c_str());
}

TEST(Why, UsageAndMissingFileErrors)
{
    const auto usage = run({"why", "--bogus", "x.jsonl"});
    EXPECT_EQ(usage.code, 2);
    EXPECT_NE(usage.err.find("usage: ahq why"), std::string::npos);
    EXPECT_EQ(run({"why"}).code, 2);
    EXPECT_EQ(run({"why", tmpPath("nonexistent.jsonl")}).code, 1);
}

TEST(Alerts, ListsTransitionsAndTotalsInEveryFormat)
{
    const std::string trace = attributedTrace("alerts.jsonl");

    const auto text = run({"alerts", trace});
    ASSERT_EQ(text.code, 0) << text.err;
    EXPECT_NE(text.out.find("RAISE"), std::string::npos);
    EXPECT_NE(text.out.find("totals:"), std::string::npos);
    EXPECT_NE(text.out.find("xapian"), std::string::npos);

    const auto csv = run({"alerts", "--format=csv", trace});
    ASSERT_EQ(csv.code, 0) << csv.err;
    EXPECT_EQ(csv.out.rfind(
                  "scenario,app,event,epoch,burn_fast,burn_slow",
                  0),
              0u);

    const auto json = run({"alerts", "--format=json",
                           "--scenario=Unmanaged", trace});
    ASSERT_EQ(json.code, 0) << json.err;
    EXPECT_NE(json.out.find("\"tool\":\"ahq alerts\""),
              std::string::npos);
    EXPECT_NE(json.out.find("\"raises\":"), std::string::npos);

    // Filters that match nothing fail loudly.
    const auto none = run({"alerts", "--scenario=absent", trace});
    EXPECT_EQ(none.code, 1);
    EXPECT_NE(none.err.find("no matching alert events"),
              std::string::npos);

    const auto usage = run({"alerts", "--format=yaml", trace});
    EXPECT_EQ(usage.code, 2);
    std::remove(trace.c_str());
}

TEST(Trace, FooterReportsReaderStats)
{
    const std::string trace = attributedTrace("footer.jsonl");
    // A mixed tail: blank lines and a foreign (future-schema)
    // event type the reader must count, not drop.
    {
        std::ofstream f(trace, std::ios::app);
        f << "\n"
          << "{\"v\":1,\"type\":\"from_the_future\",\"x\":1}\n"
          << "\n";
    }
    const auto res = run({"trace", trace});
    ASSERT_EQ(res.code, 0) << res.err;
    EXPECT_NE(res.out.find("2 blank line(s) skipped"),
              std::string::npos)
        << res.out;
    EXPECT_NE(res.out.find("1 outside the schema taxonomy"),
              std::string::npos);
    EXPECT_NE(res.out.find("from_the_future x1"),
              std::string::npos);
    std::remove(trace.c_str());
}

TEST(Trace, MalformedMixStopsWithLineNumberAndNoPartialOutput)
{
    const std::string trace = tmpPath("malformed.jsonl");
    {
        std::ofstream f(trace);
        f << "{\"v\":1,\"type\":\"run_start\",\"scenario\":\"s\","
             "\"scheduler\":\"ARQ\",\"epochs\":1}\n"
          << "\n"
          << "{\"v\":1,\"type\":\"epoch\",\"trunc\n";
    }
    const auto res = run({"trace", trace});
    EXPECT_EQ(res.code, 1);
    EXPECT_NE(res.err.find("line 3"), std::string::npos) << res.err;
    EXPECT_TRUE(res.out.empty()) << res.out;
    std::remove(trace.c_str());
}

} // namespace

/**
 * @file
 * Tests for the `ahq` CLI parsing and subcommands.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli.hh"
#include "obs/trace_reader.hh"

namespace
{

using namespace ahq::cli;

TEST(CliParse, SimulateDefaults)
{
    const auto opt = parseSimulateArgs({"xapian=0.5", "stream"});
    EXPECT_EQ(opt.strategy, "ARQ");
    EXPECT_EQ(opt.durationSeconds, 120.0);
    EXPECT_EQ(opt.cores, 10);
    ASSERT_EQ(opt.lcApps.size(), 1u);
    EXPECT_EQ(opt.lcApps[0].first, "xapian");
    EXPECT_NEAR(opt.lcApps[0].second, 0.5, 1e-12);
    ASSERT_EQ(opt.beApps.size(), 1u);
    EXPECT_EQ(opt.beApps[0], "stream");
}

TEST(CliParse, SimulateAllOptions)
{
    const auto opt = parseSimulateArgs(
        {"--strategy", "PARTIES", "--duration", "30", "--warmup",
         "10", "--cores", "6", "--ways", "12", "--bw", "5",
         "--seed", "7", "--percentile", "0.99", "--csv", "out.csv",
         "moses=0.2", "img-dnn=0.3", "fluidanimate"});
    EXPECT_EQ(opt.strategy, "PARTIES");
    EXPECT_EQ(opt.durationSeconds, 30.0);
    EXPECT_EQ(opt.warmupEpochs, 10);
    EXPECT_EQ(opt.cores, 6);
    EXPECT_EQ(opt.ways, 12);
    EXPECT_EQ(opt.bwUnits, 5);
    EXPECT_EQ(opt.seed, 7u);
    EXPECT_NEAR(opt.percentile, 0.99, 1e-12);
    EXPECT_EQ(opt.csvPath, "out.csv");
    EXPECT_EQ(opt.lcApps.size(), 2u);
    EXPECT_EQ(opt.beApps.size(), 1u);
}

TEST(CliParse, JobsFlag)
{
    const auto opt = parseSimulateArgs(
        {"--jobs", "4", "xapian=0.5", "stream"});
    EXPECT_EQ(opt.jobs, 4);
    EXPECT_EQ(parseSimulateArgs({"xapian=0.5", "stream"}).jobs, 0);
    EXPECT_THROW((void)parseSimulateArgs(
                     {"--jobs", "0", "xapian=0.5"}),
                 std::invalid_argument);
}

TEST(CliParse, Rejections)
{
    EXPECT_THROW((void)parseSimulateArgs({}),
                 std::invalid_argument);
    EXPECT_THROW((void)parseSimulateArgs({"--bogus", "x=1"}),
                 std::invalid_argument);
    EXPECT_THROW((void)parseSimulateArgs({"--duration"}),
                 std::invalid_argument);
    EXPECT_THROW((void)parseSimulateArgs({"xapian=notanumber"}),
                 std::invalid_argument);
    EXPECT_THROW((void)parseSimulateArgs(
                     {"--percentile", "1.5", "x=0.5"}),
                 std::invalid_argument);
}

TEST(CliObservations, ParsesMixedCsv)
{
    const std::string path = "/tmp/ahq_cli_obs.csv";
    {
        std::ofstream out(path);
        out << "kind,name,a,b,c\n";
        out << "# comment line\n";
        out << "lc,xapian,2.77,3.9,4.22\n";
        out << "lc,moses,2.8,16.54,10.53\n";
        out << "be,stream,0.9,0.4\n";
    }
    std::vector<ahq::core::LcObservation> lc;
    std::vector<ahq::core::BeObservation> be;
    parseObservationsCsv(path, lc, be);
    ASSERT_EQ(lc.size(), 2u);
    ASSERT_EQ(be.size(), 1u);
    EXPECT_NEAR(lc[1].actualTailMs, 16.54, 1e-12);
    EXPECT_NEAR(be[0].ipcSolo, 0.9, 1e-12);
    std::remove(path.c_str());
}

TEST(CliObservations, RejectsBadRows)
{
    const std::string path = "/tmp/ahq_cli_bad.csv";
    {
        std::ofstream out(path);
        out << "lc,xapian,2.77\n"; // too few columns
    }
    std::vector<ahq::core::LcObservation> lc;
    std::vector<ahq::core::BeObservation> be;
    EXPECT_THROW(parseObservationsCsv(path, lc, be),
                 std::invalid_argument);
    std::remove(path.c_str());
}

TEST(CliEntropy, EndToEnd)
{
    const std::string path = "/tmp/ahq_cli_e2e.csv";
    {
        std::ofstream out(path);
        out << "lc,moses,2.80,16.54,10.53\n";
        out << "be,fluid,2.63,1.0\n";
    }
    std::ostringstream out, err;
    const int rc = dispatch({"entropy", path}, out, err);
    EXPECT_EQ(rc, 0);
    EXPECT_NE(out.str().find("E_LC = 0.363"), std::string::npos)
        << out.str();
    EXPECT_NE(out.str().find("E_S"), std::string::npos);
    std::remove(path.c_str());
}

TEST(CliSimulate, EndToEnd)
{
    std::ostringstream out, err;
    const int rc = dispatch(
        {"simulate", "--duration", "15", "--warmup", "15",
         "xapian=0.2", "fluidanimate"},
        out, err);
    EXPECT_EQ(rc, 0) << err.str();
    EXPECT_NE(out.str().find("xapian"), std::string::npos);
    EXPECT_NE(out.str().find("E_S"), std::string::npos);
}

TEST(CliSimulate, UnknownAppFails)
{
    std::ostringstream out, err;
    const int rc =
        dispatch({"simulate", "redis=0.5"}, out, err);
    EXPECT_EQ(rc, 1);
    EXPECT_NE(err.str().find("unknown application"),
              std::string::npos);
}


TEST(CliOracle, EndToEnd)
{
    std::ostringstream out, err;
    const int rc = dispatch(
        {"oracle", "--waystep", "10", "--cores", "6", "--ways",
         "10", "xapian=0.4", "stream"},
        out, err);
    EXPECT_EQ(rc, 0) << err.str();
    EXPECT_NE(out.str().find("best hybrid partition"),
              std::string::npos);
    EXPECT_NE(out.str().find("sharing value"), std::string::npos);
}


TEST(CliSweep, EndToEnd)
{
    std::ostringstream out, err;
    const int rc = dispatch(
        {"sweep", "--duration", "10", "--warmup", "10",
         "xapian=0", "fluidanimate"},
        out, err);
    EXPECT_EQ(rc, 0) << err.str();
    EXPECT_NE(out.str().find("E_S by strategy"), std::string::npos);
    EXPECT_NE(out.str().find("90%"), std::string::npos);
}

TEST(CliSweep, NeedsLcApp)
{
    std::ostringstream out, err;
    EXPECT_EQ(dispatch({"sweep", "stream"}, out, err), 2);
}

TEST(CliParse, TraceAndMetricsFlags)
{
    const auto opt = parseSimulateArgs(
        {"--trace", "out.jsonl", "--metrics", "xapian=0.5"});
    EXPECT_EQ(opt.tracePath, "out.jsonl");
    EXPECT_TRUE(opt.dumpMetrics);
    EXPECT_FALSE(
        parseSimulateArgs({"xapian=0.5"}).dumpMetrics);
}

TEST(CliSimulate, TraceAndMetricsEndToEnd)
{
    const std::string trace = "/tmp/ahq_cli_trace.jsonl";
    std::ostringstream out, err;
    const int rc = dispatch(
        {"simulate", "--duration", "15", "--warmup", "15",
         "--trace", trace, "--metrics", "xapian=0.4",
         "fluidanimate"},
        out, err);
    EXPECT_EQ(rc, 0) << err.str();
    EXPECT_NE(out.str().find("trace written to " + trace),
              std::string::npos);
    EXPECT_NE(out.str().find("counter sim.epochs = 30"),
              std::string::npos)
        << out.str();

    const auto events = ahq::obs::readTraceFile(trace);
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(events.front().type(), "run_start");
    EXPECT_EQ(events.back().type(), "run_end");
    EXPECT_EQ(events.front().str("scenario"), "ARQ");
    std::remove(trace.c_str());
}

TEST(CliSimulate, UnwritableTracePathFails)
{
    std::ostringstream out, err;
    const int rc = dispatch(
        {"simulate", "--trace", "/dev/null/nope/trace.jsonl",
         "xapian=0.4"},
        out, err);
    EXPECT_EQ(rc, 1);
    EXPECT_NE(err.str().find("error:"), std::string::npos);
    EXPECT_NE(err.str().find("/dev/null/nope"), std::string::npos)
        << err.str();
}

TEST(CliTrace, SummarisesASimulateTrace)
{
    const std::string trace = "/tmp/ahq_cli_trace_sum.jsonl";
    std::ostringstream sim_out, sim_err;
    ASSERT_EQ(dispatch({"simulate", "--duration", "15", "--warmup",
                        "15", "--trace", trace, "xapian=0.6",
                        "stream"},
                       sim_out, sim_err),
              0)
        << sim_err.str();

    std::ostringstream out, err;
    const int rc = dispatch({"trace", trace}, out, err);
    EXPECT_EQ(rc, 0) << err.str();
    // Header: 30 epochs of 0.5 s over 15 s, schema v1.
    EXPECT_NE(out.str().find("1 scenario(s), 30 epochs (schema v1)"),
              std::string::npos)
        << out.str();
    EXPECT_NE(out.str().find("ARQ"), std::string::npos);
    EXPECT_NE(out.str().find("E_S per epoch"), std::string::npos);
    EXPECT_NE(out.str().find("remaining tolerance"),
              std::string::npos);

    // The decision totals agree with the raw event stream.
    int moves = 0, rollbacks = 0;
    for (const auto &ev : ahq::obs::readTraceFile(trace)) {
        if (ev.type() != "arq_decision")
            continue;
        moves += ev.str("action") == "move";
        rollbacks += ev.str("action") == "rollback";
    }
    EXPECT_NE(out.str().find(std::to_string(moves)),
              std::string::npos);
    EXPECT_NE(out.str().find(std::to_string(rollbacks)),
              std::string::npos);
    std::remove(trace.c_str());
}

TEST(CliTrace, ErrorsAreLoudAndSpecific)
{
    std::ostringstream out, err;
    EXPECT_EQ(dispatch({"trace"}, out, err), 2);

    std::ostringstream err2;
    EXPECT_EQ(dispatch({"trace", "/tmp/ahq_no_such_trace.jsonl"},
                       out, err2),
              1);
    EXPECT_NE(err2.str().find("cannot open"), std::string::npos);

    const std::string empty = "/tmp/ahq_cli_trace_empty.jsonl";
    { std::ofstream f(empty); }
    std::ostringstream err3;
    EXPECT_EQ(dispatch({"trace", empty}, out, err3), 1);
    EXPECT_NE(err3.str().find("empty trace"), std::string::npos);
    std::remove(empty.c_str());

    const std::string bad = "/tmp/ahq_cli_trace_badv.jsonl";
    {
        std::ofstream f(bad);
        f << "{\"v\":99,\"type\":\"run_start\"}\n";
    }
    std::ostringstream err4;
    EXPECT_EQ(dispatch({"trace", bad}, out, err4), 1);
    EXPECT_NE(err4.str().find("unsupported schema version 99"),
              std::string::npos);
    std::remove(bad.c_str());
}

TEST(CliSweep, TraceBytesIdenticalAcrossJobs)
{
    const std::string t1 = "/tmp/ahq_sweep_trace_j1.jsonl";
    const std::string t4 = "/tmp/ahq_sweep_trace_j4.jsonl";
    auto slurp = [](const std::string &path) {
        std::ifstream in(path);
        std::stringstream ss;
        ss << in.rdbuf();
        return ss.str();
    };

    std::ostringstream out1, err1, out4, err4;
    ASSERT_EQ(dispatch({"sweep", "--duration", "10", "--warmup",
                        "10", "--jobs", "1", "--trace", t1,
                        "xapian=0", "fluidanimate"},
                       out1, err1),
              0)
        << err1.str();
    ASSERT_EQ(dispatch({"sweep", "--duration", "10", "--warmup",
                        "10", "--jobs", "4", "--trace", t4,
                        "xapian=0", "fluidanimate"},
                       out4, err4),
              0)
        << err4.str();

    const std::string a = slurp(t1);
    const std::string b = slurp(t4);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b); // byte-for-byte across thread counts

    // The sweep table itself is identical too.
    EXPECT_EQ(out1.str().substr(0, out1.str().find("trace written")),
              out4.str().substr(0, out4.str().find("trace written")));
    std::remove(t1.c_str());
    std::remove(t4.c_str());
}

TEST(CliDispatch, ListsAndUsage)
{
    std::ostringstream out, err;
    EXPECT_EQ(dispatch({"apps"}, out, err), 0);
    EXPECT_NE(out.str().find("xapian"), std::string::npos);
    EXPECT_NE(out.str().find("stream"), std::string::npos);

    std::ostringstream out2;
    EXPECT_EQ(dispatch({"strategies"}, out2, err), 0);
    EXPECT_NE(out2.str().find("ARQ"), std::string::npos);
    EXPECT_NE(out2.str().find("Heracles"), std::string::npos);

    std::ostringstream out3, err3;
    EXPECT_EQ(dispatch({}, out3, err3), 2);
    EXPECT_EQ(dispatch({"frobnicate"}, out3, err3), 2);

    std::ostringstream out4, err4;
    EXPECT_EQ(dispatch({"help"}, out4, err4), 0);
    EXPECT_NE(out4.str().find("usage: ahq"), std::string::npos);
    EXPECT_NE(out4.str().find("oracle"), std::string::npos);
}

} // namespace

/**
 * @file
 * Tests for the `ahq` CLI parsing and subcommands.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli.hh"
#include "obs/trace_reader.hh"

namespace
{

using namespace ahq::cli;

TEST(CliParse, SimulateDefaults)
{
    const auto opt = parseSimulateArgs({"xapian=0.5", "stream"});
    EXPECT_EQ(opt.strategy, "ARQ");
    EXPECT_EQ(opt.durationSeconds, 120.0);
    EXPECT_EQ(opt.cores, 10);
    ASSERT_EQ(opt.lcApps.size(), 1u);
    EXPECT_EQ(opt.lcApps[0].first, "xapian");
    EXPECT_NEAR(opt.lcApps[0].second, 0.5, 1e-12);
    ASSERT_EQ(opt.beApps.size(), 1u);
    EXPECT_EQ(opt.beApps[0], "stream");
}

TEST(CliParse, SimulateAllOptions)
{
    const auto opt = parseSimulateArgs(
        {"--strategy", "PARTIES", "--duration", "30", "--warmup",
         "10", "--cores", "6", "--ways", "12", "--bw", "5",
         "--seed", "7", "--percentile", "0.99", "--csv", "out.csv",
         "moses=0.2", "img-dnn=0.3", "fluidanimate"});
    EXPECT_EQ(opt.strategy, "PARTIES");
    EXPECT_EQ(opt.durationSeconds, 30.0);
    EXPECT_EQ(opt.warmupEpochs, 10);
    EXPECT_EQ(opt.cores, 6);
    EXPECT_EQ(opt.ways, 12);
    EXPECT_EQ(opt.bwUnits, 5);
    EXPECT_EQ(opt.seed, 7u);
    EXPECT_NEAR(opt.percentile, 0.99, 1e-12);
    EXPECT_EQ(opt.csvPath, "out.csv");
    EXPECT_EQ(opt.lcApps.size(), 2u);
    EXPECT_EQ(opt.beApps.size(), 1u);
}

TEST(CliParse, JobsFlag)
{
    const auto opt = parseSimulateArgs(
        {"--jobs", "4", "xapian=0.5", "stream"});
    EXPECT_EQ(opt.jobs, 4);
    EXPECT_EQ(parseSimulateArgs({"xapian=0.5", "stream"}).jobs, 0);
    EXPECT_THROW((void)parseSimulateArgs(
                     {"--jobs", "0", "xapian=0.5"}),
                 std::invalid_argument);
}

TEST(CliParse, Rejections)
{
    EXPECT_THROW((void)parseSimulateArgs({}),
                 std::invalid_argument);
    EXPECT_THROW((void)parseSimulateArgs({"--bogus", "x=1"}),
                 std::invalid_argument);
    EXPECT_THROW((void)parseSimulateArgs({"--duration"}),
                 std::invalid_argument);
    EXPECT_THROW((void)parseSimulateArgs({"xapian=notanumber"}),
                 std::invalid_argument);
    EXPECT_THROW((void)parseSimulateArgs(
                     {"--percentile", "1.5", "x=0.5"}),
                 std::invalid_argument);
}

TEST(CliParse, EqualsSpellingAccepted)
{
    const auto opt = parseSimulateArgs(
        {"--strategy=PARTIES", "--duration=30", "--jobs=4",
         "--ri=0.6", "--check=log", "xapian=0.5"});
    EXPECT_EQ(opt.strategy, "PARTIES");
    EXPECT_EQ(opt.durationSeconds, 30.0);
    EXPECT_EQ(opt.jobs, 4);
    EXPECT_NEAR(opt.ri, 0.6, 1e-12);
    EXPECT_EQ(opt.checkMode, ahq::check::Mode::Log);
}

/** Expects parseSimulateArgs(args) to throw mentioning `needle`. */
void
expectParseError(const std::vector<std::string> &args,
                 const std::string &needle)
{
    try {
        (void)parseSimulateArgs(args);
        FAIL() << "expected invalid_argument for " << needle;
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find(needle),
                  std::string::npos)
            << "error '" << e.what() << "' does not mention "
            << needle;
    }
}

TEST(CliParse, NumericValidationIsActionable)
{
    // Each rejection names the flag and the accepted range.
    expectParseError({"--jobs=0", "xapian=0.5"}, "--jobs must be");
    expectParseError({"--jobs", "-3", "xapian=0.5"},
                     "--jobs must be");
    expectParseError({"--duration", "-5", "xapian=0.5"},
                     "--duration must be a positive");
    expectParseError({"--duration", "0", "xapian=0.5"},
                     "--duration must be a positive");
    expectParseError({"--duration", "inf", "xapian=0.5"},
                     "--duration");
    expectParseError({"--warmup", "-1", "xapian=0.5"},
                     "--warmup must be");
    expectParseError({"--warmup", "2.5", "xapian=0.5"},
                     "expected an integer");
    expectParseError({"--cores", "0", "xapian=0.5"},
                     "--cores must be");
    expectParseError({"--ways=-2", "xapian=0.5"},
                     "--ways must be");
    expectParseError({"--seed", "-1", "xapian=0.5"},
                     "--seed must be");
    expectParseError({"--ri", "1.5", "xapian=0.5"},
                     "--ri must be within [0, 1]");
    expectParseError({"--ri", "-0.1", "xapian=0.5"},
                     "--ri must be within [0, 1]");
    expectParseError({"--ri", "nan", "xapian=0.5"}, "--ri");
    expectParseError({"--check", "yes", "xapian=0.5"}, "check");
    expectParseError({"--metrics=1", "xapian=0.5"},
                     "--metrics does not take a value");
}

TEST(CliSimulate, BadFlagsFailBeforeRunning)
{
    // End-to-end: exit code 2 (usage error) and a flag-naming
    // message on stderr, with no simulation output on stdout.
    for (const auto &args : std::vector<std::vector<std::string>>{
             {"simulate", "--jobs=0", "xapian=0.5"},
             {"simulate", "--duration", "-5", "xapian=0.5"},
             {"simulate", "--warmup", "-1", "xapian=0.5"},
             {"simulate", "--ri", "2", "xapian=0.5"},
             {"sweep", "--jobs", "0", "xapian=0.5"},
             {"oracle", "--waystep", "0", "xapian=0.5"}}) {
        std::ostringstream out, err;
        EXPECT_EQ(dispatch(args, out, err), 2) << args[1];
        EXPECT_NE(err.str().find("error:"), std::string::npos);
        EXPECT_NE(err.str().find("--"), std::string::npos)
            << "error does not name a flag: " << err.str();
        EXPECT_EQ(out.str().find("E_S"), std::string::npos);
    }
}

TEST(CliSimulate, RiFlagChangesWeighting)
{
    // Same colocation, RI 1.0 vs 0.0: E_S equals E_LC / E_BE
    // respectively, so the printed values must differ.
    std::ostringstream out_lc, out_be, err;
    ASSERT_EQ(dispatch({"simulate", "--duration", "15", "--warmup",
                        "15", "--ri=1", "xapian=0.8", "stream"},
                       out_lc, err),
              0)
        << err.str();
    ASSERT_EQ(dispatch({"simulate", "--duration", "15", "--warmup",
                        "15", "--ri=0", "xapian=0.8", "stream"},
                       out_be, err),
              0)
        << err.str();
    auto es = [](const std::string &s) {
        const auto at = s.find("E_S = ");
        return s.substr(at, s.find(',', at) - at);
    };
    EXPECT_NE(es(out_lc.str()), es(out_be.str()));
}

TEST(CliSimulate, StrictCheckCleanRun)
{
    std::ostringstream out, err;
    const int rc = dispatch(
        {"simulate", "--duration", "15", "--warmup", "15",
         "--check=strict", "--metrics", "xapian=0.4",
         "fluidanimate"},
        out, err);
    EXPECT_EQ(rc, 0) << err.str();
    // The auditor ran and found nothing.
    EXPECT_EQ(out.str().find("check.violations"),
              std::string::npos);
    EXPECT_NE(out.str().find("E_S"), std::string::npos);
}

TEST(CliChecks, ListsRegistry)
{
    std::ostringstream out, err;
    EXPECT_EQ(dispatch({"checks"}, out, err), 0);
    EXPECT_NE(out.str().find("capacity.conserved"),
              std::string::npos);
    EXPECT_NE(out.str().find("arq.rollback_exact"),
              std::string::npos);
    EXPECT_NE(out.str().find("AHQ_CHECK"), std::string::npos);
}

TEST(CliObservations, ParsesMixedCsv)
{
    const std::string path = "/tmp/ahq_cli_obs.csv";
    {
        std::ofstream out(path);
        out << "kind,name,a,b,c\n";
        out << "# comment line\n";
        out << "lc,xapian,2.77,3.9,4.22\n";
        out << "lc,moses,2.8,16.54,10.53\n";
        out << "be,stream,0.9,0.4\n";
    }
    std::vector<ahq::core::LcObservation> lc;
    std::vector<ahq::core::BeObservation> be;
    parseObservationsCsv(path, lc, be);
    ASSERT_EQ(lc.size(), 2u);
    ASSERT_EQ(be.size(), 1u);
    EXPECT_NEAR(lc[1].actualTailMs, 16.54, 1e-12);
    EXPECT_NEAR(be[0].ipcSolo, 0.9, 1e-12);
    std::remove(path.c_str());
}

TEST(CliObservations, RejectsBadRows)
{
    const std::string path = "/tmp/ahq_cli_bad.csv";
    {
        std::ofstream out(path);
        out << "lc,xapian,2.77\n"; // too few columns
    }
    std::vector<ahq::core::LcObservation> lc;
    std::vector<ahq::core::BeObservation> be;
    EXPECT_THROW(parseObservationsCsv(path, lc, be),
                 std::invalid_argument);
    std::remove(path.c_str());
}

TEST(CliEntropy, EndToEnd)
{
    const std::string path = "/tmp/ahq_cli_e2e.csv";
    {
        std::ofstream out(path);
        out << "lc,moses,2.80,16.54,10.53\n";
        out << "be,fluid,2.63,1.0\n";
    }
    std::ostringstream out, err;
    const int rc = dispatch({"entropy", path}, out, err);
    EXPECT_EQ(rc, 0);
    EXPECT_NE(out.str().find("E_LC = 0.363"), std::string::npos)
        << out.str();
    EXPECT_NE(out.str().find("E_S"), std::string::npos);
    std::remove(path.c_str());
}

TEST(CliSimulate, EndToEnd)
{
    std::ostringstream out, err;
    const int rc = dispatch(
        {"simulate", "--duration", "15", "--warmup", "15",
         "xapian=0.2", "fluidanimate"},
        out, err);
    EXPECT_EQ(rc, 0) << err.str();
    EXPECT_NE(out.str().find("xapian"), std::string::npos);
    EXPECT_NE(out.str().find("E_S"), std::string::npos);
}

TEST(CliSimulate, UnknownAppFails)
{
    std::ostringstream out, err;
    const int rc =
        dispatch({"simulate", "redis=0.5"}, out, err);
    EXPECT_EQ(rc, 1);
    EXPECT_NE(err.str().find("unknown application"),
              std::string::npos);
}


TEST(CliOracle, EndToEnd)
{
    std::ostringstream out, err;
    const int rc = dispatch(
        {"oracle", "--waystep", "10", "--cores", "6", "--ways",
         "10", "xapian=0.4", "stream"},
        out, err);
    EXPECT_EQ(rc, 0) << err.str();
    EXPECT_NE(out.str().find("best hybrid partition"),
              std::string::npos);
    EXPECT_NE(out.str().find("sharing value"), std::string::npos);
}


TEST(CliSweep, EndToEnd)
{
    std::ostringstream out, err;
    const int rc = dispatch(
        {"sweep", "--duration", "10", "--warmup", "10",
         "xapian=0", "fluidanimate"},
        out, err);
    EXPECT_EQ(rc, 0) << err.str();
    EXPECT_NE(out.str().find("E_S by strategy"), std::string::npos);
    EXPECT_NE(out.str().find("90%"), std::string::npos);
}

TEST(CliSweep, NeedsLcApp)
{
    std::ostringstream out, err;
    EXPECT_EQ(dispatch({"sweep", "stream"}, out, err), 2);
}

TEST(CliParse, TraceAndMetricsFlags)
{
    const auto opt = parseSimulateArgs(
        {"--trace", "out.jsonl", "--metrics", "xapian=0.5"});
    EXPECT_EQ(opt.tracePath, "out.jsonl");
    EXPECT_TRUE(opt.dumpMetrics);
    EXPECT_FALSE(
        parseSimulateArgs({"xapian=0.5"}).dumpMetrics);
}

TEST(CliSimulate, TraceAndMetricsEndToEnd)
{
    const std::string trace = "/tmp/ahq_cli_trace.jsonl";
    std::ostringstream out, err;
    const int rc = dispatch(
        {"simulate", "--duration", "15", "--warmup", "15",
         "--trace", trace, "--metrics", "xapian=0.4",
         "fluidanimate"},
        out, err);
    EXPECT_EQ(rc, 0) << err.str();
    EXPECT_NE(out.str().find("trace written to " + trace),
              std::string::npos);
    EXPECT_NE(out.str().find("counter sim.epochs = 30"),
              std::string::npos)
        << out.str();

    const auto events = ahq::obs::readTraceFile(trace);
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(events.front().type(), "run_start");
    EXPECT_EQ(events.front().str("scenario"), "ARQ");
    // The time-series registry flushes after the run, so the
    // trace ends with the folded `series` summaries; run_end
    // still closes the event stream proper.
    EXPECT_EQ(events.back().type(), "series");
    bool saw_run_end = false;
    for (const auto &ev : events) {
        if (ev.type() == "run_end") {
            saw_run_end = true;
        } else if (ev.type() == "series") {
            EXPECT_TRUE(saw_run_end) << "series before run_end";
        }
    }
    EXPECT_TRUE(saw_run_end);
    std::remove(trace.c_str());
}

TEST(CliSimulate, UnwritableTracePathFails)
{
    std::ostringstream out, err;
    const int rc = dispatch(
        {"simulate", "--trace", "/dev/null/nope/trace.jsonl",
         "xapian=0.4"},
        out, err);
    EXPECT_EQ(rc, 1);
    EXPECT_NE(err.str().find("error:"), std::string::npos);
    EXPECT_NE(err.str().find("/dev/null/nope"), std::string::npos)
        << err.str();
}

TEST(CliTrace, SummarisesASimulateTrace)
{
    const std::string trace = "/tmp/ahq_cli_trace_sum.jsonl";
    std::ostringstream sim_out, sim_err;
    ASSERT_EQ(dispatch({"simulate", "--duration", "15", "--warmup",
                        "15", "--trace", trace, "xapian=0.6",
                        "stream"},
                       sim_out, sim_err),
              0)
        << sim_err.str();

    std::ostringstream out, err;
    const int rc = dispatch({"trace", trace}, out, err);
    EXPECT_EQ(rc, 0) << err.str();
    // Header: 30 epochs of 0.5 s over 15 s, schema v1.
    EXPECT_NE(out.str().find("1 scenario(s), 30 epochs (schema v1)"),
              std::string::npos)
        << out.str();
    EXPECT_NE(out.str().find("ARQ"), std::string::npos);
    EXPECT_NE(out.str().find("E_S per epoch"), std::string::npos);
    EXPECT_NE(out.str().find("remaining tolerance"),
              std::string::npos);

    // The decision totals agree with the raw event stream.
    int moves = 0, rollbacks = 0;
    for (const auto &ev : ahq::obs::readTraceFile(trace)) {
        if (ev.type() != "arq_decision")
            continue;
        moves += ev.str("action") == "move";
        rollbacks += ev.str("action") == "rollback";
    }
    EXPECT_NE(out.str().find(std::to_string(moves)),
              std::string::npos);
    EXPECT_NE(out.str().find(std::to_string(rollbacks)),
              std::string::npos);
    std::remove(trace.c_str());
}

TEST(CliTrace, ErrorsAreLoudAndSpecific)
{
    std::ostringstream out, err;
    EXPECT_EQ(dispatch({"trace"}, out, err), 2);

    std::ostringstream err2;
    EXPECT_EQ(dispatch({"trace", "/tmp/ahq_no_such_trace.jsonl"},
                       out, err2),
              1);
    EXPECT_NE(err2.str().find("cannot open"), std::string::npos);

    const std::string empty = "/tmp/ahq_cli_trace_empty.jsonl";
    { std::ofstream f(empty); }
    std::ostringstream err3;
    EXPECT_EQ(dispatch({"trace", empty}, out, err3), 1);
    EXPECT_NE(err3.str().find("empty trace"), std::string::npos);
    std::remove(empty.c_str());

    const std::string bad = "/tmp/ahq_cli_trace_badv.jsonl";
    {
        std::ofstream f(bad);
        f << "{\"v\":99,\"type\":\"run_start\"}\n";
    }
    std::ostringstream err4;
    EXPECT_EQ(dispatch({"trace", bad}, out, err4), 1);
    EXPECT_NE(err4.str().find("unsupported schema version 99"),
              std::string::npos);
    std::remove(bad.c_str());
}

TEST(CliSweep, TraceBytesIdenticalAcrossJobs)
{
    const std::string t1 = "/tmp/ahq_sweep_trace_j1.jsonl";
    const std::string t4 = "/tmp/ahq_sweep_trace_j4.jsonl";
    auto slurp = [](const std::string &path) {
        std::ifstream in(path);
        std::stringstream ss;
        ss << in.rdbuf();
        return ss.str();
    };

    std::ostringstream out1, err1, out4, err4;
    ASSERT_EQ(dispatch({"sweep", "--duration", "10", "--warmup",
                        "10", "--jobs", "1", "--trace", t1,
                        "xapian=0", "fluidanimate"},
                       out1, err1),
              0)
        << err1.str();
    ASSERT_EQ(dispatch({"sweep", "--duration", "10", "--warmup",
                        "10", "--jobs", "4", "--trace", t4,
                        "xapian=0", "fluidanimate"},
                       out4, err4),
              0)
        << err4.str();

    const std::string a = slurp(t1);
    const std::string b = slurp(t4);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b); // byte-for-byte across thread counts

    // The sweep table itself is identical too.
    EXPECT_EQ(out1.str().substr(0, out1.str().find("trace written")),
              out4.str().substr(0, out4.str().find("trace written")));
    std::remove(t1.c_str());
    std::remove(t4.c_str());
}

TEST(CliParse, FaultsFlag)
{
    const auto opt = parseSimulateArgs(
        {"--faults", "plan.jsonl", "xapian=0.5"});
    EXPECT_EQ(opt.faultsPath, "plan.jsonl");
    EXPECT_EQ(parseSimulateArgs({"--faults=p2.jsonl", "xapian=0.5"})
                  .faultsPath,
              "p2.jsonl");
    EXPECT_TRUE(parseSimulateArgs({"xapian=0.5"}).faultsPath.empty());
    // --check presence is recorded so chaos can default to strict
    // without clobbering an explicit mode.
    EXPECT_TRUE(parseSimulateArgs({"--check=log", "xapian=0.5"})
                    .checkModeExplicit);
    EXPECT_FALSE(parseSimulateArgs({"xapian=0.5"}).checkModeExplicit);
}

TEST(CliSimulate, FaultsEndToEnd)
{
    const std::string plan = "/tmp/ahq_cli_plan.jsonl";
    {
        std::ofstream f(plan);
        f << "{\"fault\":\"measurement\",\"p_drop\":0.2}\n";
    }
    std::ostringstream out, err;
    const int rc = dispatch(
        {"simulate", "--duration", "15", "--warmup", "15",
         "--faults", plan, "--metrics", "xapian=0.4",
         "fluidanimate"},
        out, err);
    EXPECT_EQ(rc, 0) << err.str();
    EXPECT_NE(out.str().find("fault.measurement_drop"),
              std::string::npos)
        << out.str();
    std::remove(plan.c_str());
}

TEST(CliSimulate, BadFaultPlanFails)
{
    const std::string plan = "/tmp/ahq_cli_badplan.jsonl";
    {
        std::ofstream f(plan);
        f << "{\"fault\":\"quantum\"}\n";
    }
    std::ostringstream out, err;
    EXPECT_EQ(dispatch({"simulate", "--faults", plan, "xapian=0.4"},
                       out, err),
              1);
    EXPECT_NE(err.str().find("error:"), std::string::npos);
    std::remove(plan.c_str());

    std::ostringstream err2;
    EXPECT_EQ(dispatch({"chaos", "--faults",
                        "/tmp/ahq_no_such_plan.jsonl"},
                       out, err2),
              1);
    EXPECT_NE(err2.str().find("error:"), std::string::npos);
}

TEST(CliChaos, EndToEndWithBuiltinPlan)
{
    std::ostringstream out, err;
    const int rc = dispatch(
        {"chaos", "--duration", "10", "--warmup", "4"}, out, err);
    EXPECT_EQ(rc, 0) << err.str();
    // Every strategy ran under the builtin plan with strict checks.
    EXPECT_NE(out.str().find("chaos over"), std::string::npos);
    EXPECT_NE(out.str().find("check=strict"), std::string::npos);
    EXPECT_NE(out.str().find("ARQ"), std::string::npos);
    EXPECT_NE(out.str().find("Heracles"), std::string::npos);
    EXPECT_NE(out.str().find("fault injection"), std::string::npos)
        << out.str();
    EXPECT_NE(out.str().find("measurement drops"),
              std::string::npos);
    EXPECT_NE(out.str().find("actuation failures"),
              std::string::npos);
}

TEST(CliChaos, AcceptsExplicitAppsAndPlan)
{
    const std::string plan = "/tmp/ahq_cli_chaos_plan.jsonl";
    {
        std::ofstream f(plan);
        f << "{\"fault\":\"measurement\",\"p_drop\":0.1}\n";
        f << "{\"fault\":\"load_spike\",\"app\":0,\"from_s\":2,"
             "\"until_s\":6,\"factor\":1.5}\n";
    }
    std::ostringstream out, err;
    const int rc = dispatch(
        {"chaos", "--duration", "10", "--warmup", "4", "--faults",
         plan, "xapian=0.5", "stream"},
        out, err);
    EXPECT_EQ(rc, 0) << err.str();
    EXPECT_NE(out.str().find(plan), std::string::npos)
        << out.str();
    std::remove(plan.c_str());
}

TEST(CliFleet, EndToEnd)
{
    std::ostringstream out, err;
    const int rc = dispatch({"fleet", "--nodes", "4", "--duration",
                             "6", "--warmup", "4"},
                            out, err);
    EXPECT_EQ(rc, 0) << err.str();
    EXPECT_NE(out.str().find("fleet: 4 nodes"), std::string::npos)
        << out.str();
    EXPECT_NE(out.str().find("peak demand"), std::string::npos);
    EXPECT_NE(out.str().find("E_S ="), std::string::npos);
    EXPECT_NE(out.str().find("nodes/s"), std::string::npos);
}

TEST(CliFleet, RejectsAppSpecs)
{
    std::ostringstream out, err;
    const int rc =
        dispatch({"fleet", "xapian=0.5", "stream"}, out, err);
    EXPECT_EQ(rc, 2);
    EXPECT_NE(err.str().find("load generator"), std::string::npos)
        << err.str();
}

TEST(CliFleet, RebalancePrintsRoundsAndMigrations)
{
    std::ostringstream out, err;
    const int rc = dispatch(
        {"fleet", "--nodes", "4", "--duration", "12", "--warmup",
         "2", "--rebalance-every", "6", "--spread", "0.0001"},
        out, err);
    EXPECT_EQ(rc, 0) << err.str();
    EXPECT_NE(out.str().find("round"), std::string::npos)
        << out.str();
    EXPECT_NE(out.str().find("spread"), std::string::npos);
    EXPECT_NE(out.str().find("migrations ="), std::string::npos);
}

TEST(CliDispatch, ListsAndUsage)
{
    std::ostringstream out, err;
    EXPECT_EQ(dispatch({"apps"}, out, err), 0);
    EXPECT_NE(out.str().find("xapian"), std::string::npos);
    EXPECT_NE(out.str().find("stream"), std::string::npos);

    std::ostringstream out2;
    EXPECT_EQ(dispatch({"strategies"}, out2, err), 0);
    EXPECT_NE(out2.str().find("ARQ"), std::string::npos);
    EXPECT_NE(out2.str().find("Heracles"), std::string::npos);

    std::ostringstream out3, err3;
    EXPECT_EQ(dispatch({}, out3, err3), 2);
    EXPECT_EQ(dispatch({"frobnicate"}, out3, err3), 2);

    std::ostringstream out4, err4;
    EXPECT_EQ(dispatch({"help"}, out4, err4), 0);
    EXPECT_NE(out4.str().find("usage: ahq"), std::string::npos);
    EXPECT_NE(out4.str().find("oracle"), std::string::npos);
}

} // namespace

/**
 * @file
 * Tests for the `ahq experiment` subcommand: verb round-trips
 * through real JSONL traces and the --jobs byte-identity guarantee
 * at the CLI surface (the harness-level twin lives in
 * tests/experiment/harness_test.cc).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli.hh"

namespace
{

using namespace ahq::cli;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** A tiny but complete experiment invocation. */
std::vector<std::string>
runArgs(const std::string &trace, const std::string &jobs)
{
    return {"experiment",    "run",  "--design=switchback",
            "--arm-a=ARQ",   "--arm-b=Unmanaged",
            "--nodes=2",     "--blocks=2",
            "--block-epochs=4",
            "--resamples=50", "--lc=2",
            "--be=1",        "--tenants=8",
            "--seed",        "7",
            "--jobs",        jobs,
            "--trace",       trace};
}

TEST(ExperimentCli, TraceBytesIdenticalAcrossJobs)
{
    std::vector<std::string> traces;
    std::vector<std::string> stdouts;
    for (const std::string jobs : {"1", "4", "16"}) {
        const std::string path =
            "/tmp/ahq_exp_jobs" + jobs + ".jsonl";
        std::ostringstream out, err;
        ASSERT_EQ(dispatch(runArgs(path, jobs), out, err), 0)
            << err.str();
        traces.push_back(slurp(path));
        // Strip the final "trace written to <path>" line: the path
        // embeds the jobs value, and everything above it (the
        // estimate table, CIs, verdict) must agree byte for byte.
        std::string text = out.str();
        const auto cut = text.rfind("trace written to ");
        ASSERT_NE(cut, std::string::npos) << text;
        stdouts.push_back(text.substr(0, cut));
        std::remove(path.c_str());
    }
    ASSERT_FALSE(traces[0].empty());
    EXPECT_EQ(traces[0], traces[1]);
    EXPECT_EQ(traces[0], traces[2]);
    EXPECT_EQ(stdouts[0], stdouts[1]);
    EXPECT_EQ(stdouts[0], stdouts[2]);
}

TEST(ExperimentCli, AnalyzeAndVerdictRoundTripThroughTrace)
{
    const std::string path = "/tmp/ahq_exp_roundtrip.jsonl";
    std::ostringstream out, err;
    ASSERT_EQ(dispatch(runArgs(path, "2"), out, err), 0)
        << err.str();
    const std::string run_out = out.str();

    // `verdict` prints exactly the one-line outcome, and it is the
    // same verdict the run printed.
    std::ostringstream vout, verr;
    ASSERT_EQ(dispatch({"experiment", "verdict", path}, vout, verr),
              0)
        << verr.str();
    std::string verdict = vout.str();
    ASSERT_FALSE(verdict.empty());
    verdict.pop_back(); // trailing newline
    EXPECT_NE(run_out.find("verdict: " + verdict),
              std::string::npos)
        << run_out;

    // `analyze` re-estimates from the trace; the estimate table it
    // prints appears in the run output verbatim (same blocks, same
    // estimator seed).
    std::ostringstream aout, aerr;
    ASSERT_EQ(dispatch({"experiment", "analyze", path}, aout, aerr),
              0)
        << aerr.str();
    const std::string analyze_out = aout.str();
    EXPECT_NE(analyze_out.find("verdict: " + verdict),
              std::string::npos);

    std::remove(path.c_str());
}

TEST(ExperimentCli, DesignVerbIsAPureFunctionOfSeed)
{
    const std::vector<std::string> args = {
        "experiment", "design",       "--design=switchback",
        "--nodes=3",  "--blocks=6",   "--seed", "11"};
    std::ostringstream a, b, err;
    ASSERT_EQ(dispatch(args, a, err), 0) << err.str();
    ASSERT_EQ(dispatch(args, b, err), 0) << err.str();
    EXPECT_EQ(a.str(), b.str());
    EXPECT_NE(a.str().find("switchback"), std::string::npos);
}

TEST(ExperimentCli, RejectsMalformedInvocations)
{
    std::ostringstream out, err;
    // Unknown design kind.
    EXPECT_EQ(dispatch({"experiment", "design",
                        "--design=crossover"},
                       out, err),
              2);
    // Odd switchback block count cannot balance.
    EXPECT_EQ(dispatch({"experiment", "design", "--blocks=5"}, out,
                       err),
              2);
    // Unknown scheduler arm.
    EXPECT_EQ(dispatch({"experiment", "design", "--arm-a=Bogus"},
                       out, err),
              2);
    // App specs belong to simulate, not experiment.
    EXPECT_EQ(dispatch({"experiment", "run", "xapian=0.5"}, out,
                       err),
              2);
    // Unknown verb.
    EXPECT_EQ(dispatch({"experiment", "frobnicate"}, out, err), 2);
}

} // namespace

/**
 * @file
 * Tests for the global load generator: determinism, Zipf tenant
 * skew, diurnal shape, flash gating and bounds.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "trace/fleet_load.hh"

namespace
{

using namespace ahq::trace;

TEST(FleetLoad, DeterministicAcrossInstances)
{
    FleetLoadConfig cfg;
    cfg.numNodes = 64;
    const FleetLoadGenerator g1(cfg);
    const FleetLoadGenerator g2(cfg);
    for (int n = 0; n < cfg.numNodes; ++n) {
        for (int s = 0; s < cfg.lcPerNode; ++s)
            EXPECT_EQ(g1.tenant(n, s), g2.tenant(n, s));
    }
    const auto t1 = g1.tenantTrace(1);
    const auto t2 = g2.tenantTrace(1);
    for (double t = 0.0; t < cfg.diurnalPeriodS; t += 7.3)
        EXPECT_EQ(t1->at(t), t2->at(t));
}

TEST(FleetLoad, ZipfSkewFavorsLowRanks)
{
    FleetLoadConfig cfg;
    cfg.numNodes = 512;
    cfg.numTenants = 64;
    const FleetLoadGenerator gen(cfg);
    std::map<std::uint64_t, int> hits;
    for (int n = 0; n < cfg.numNodes; ++n) {
        for (int s = 0; s < cfg.lcPerNode; ++s) {
            const auto r = gen.tenant(n, s);
            ASSERT_GE(r, 1u);
            ASSERT_LE(r, static_cast<std::uint64_t>(cfg.numTenants));
            ++hits[r];
        }
    }
    // Rank 1 dominates the tail of the popularity distribution.
    EXPECT_GT(hits[1], hits[static_cast<std::uint64_t>(
                           cfg.numTenants)]);
    EXPECT_GT(hits[1], cfg.numNodes * cfg.lcPerNode / cfg.numTenants);
}

TEST(FleetLoad, TracesStayWithinBounds)
{
    FleetLoadConfig cfg;
    cfg.flashFraction = 1.0; // worst case: everyone flashes
    const FleetLoadGenerator gen(cfg);
    for (std::uint64_t r = 1;
         r <= static_cast<std::uint64_t>(cfg.numTenants); ++r) {
        const auto trace = gen.tenantTrace(r);
        for (double t = 0.0; t < 2.0 * cfg.diurnalPeriodS;
             t += 1.7) {
            const double v = trace->at(t);
            EXPECT_GE(v, 0.0);
            EXPECT_LE(v, cfg.loadCap);
        }
    }
}

TEST(FleetLoad, DiurnalVariationIsVisible)
{
    const FleetLoadGenerator gen;
    const auto trace = gen.tenantTrace(1);
    double lo = 1e300, hi = -1e300;
    for (double t = 0.0; t < gen.config().diurnalPeriodS;
         t += 0.5) {
        lo = std::min(lo, trace->at(t));
        hi = std::max(hi, trace->at(t));
    }
    // Night vs day must differ by a meaningful margin.
    EXPECT_GT(hi - lo, 0.1);
}

TEST(FleetLoad, FlashFractionGatesFlashes)
{
    FleetLoadConfig none;
    none.flashFraction = 0.0;
    const FleetLoadGenerator g_none(none);
    FleetLoadConfig all;
    all.flashFraction = 1.0;
    const FleetLoadGenerator g_all(all);
    for (std::uint64_t r = 1;
         r <= static_cast<std::uint64_t>(none.numTenants); ++r) {
        EXPECT_FALSE(g_none.tenantFlashes(r));
        EXPECT_TRUE(g_all.tenantFlashes(r));
    }
}

TEST(FleetLoad, PeakLoadInterpolatesByPopularity)
{
    const FleetLoadGenerator gen;
    const auto &cfg = gen.config();
    EXPECT_NEAR(gen.tenantPeakLoad(1), cfg.peakLoad, 1e-12);
    // Peaks decrease with rank and never fall below baseLoad.
    double prev = gen.tenantPeakLoad(1);
    for (std::uint64_t r = 2;
         r <= static_cast<std::uint64_t>(cfg.numTenants); ++r) {
        const double p = gen.tenantPeakLoad(r);
        EXPECT_LE(p, prev + 1e-12);
        EXPECT_GE(p, cfg.baseLoad - 1e-12);
        prev = p;
    }
}

} // namespace

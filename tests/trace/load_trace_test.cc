/**
 * @file
 * Tests for load traces.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "trace/load_trace.hh"

namespace
{

using namespace ahq::trace;

TEST(ConstantTrace, AlwaysSameValue)
{
    ConstantTrace t(0.4);
    EXPECT_EQ(t.at(0.0), 0.4);
    EXPECT_EQ(t.at(1e6), 0.4);
}

TEST(StepTrace, StepsAtBoundaries)
{
    StepTrace t({{0.0, 0.1}, {10.0, 0.5}, {20.0, 0.9}});
    EXPECT_EQ(t.at(0.0), 0.1);
    EXPECT_EQ(t.at(9.999), 0.1);
    EXPECT_EQ(t.at(10.0), 0.5);
    EXPECT_EQ(t.at(15.0), 0.5);
    EXPECT_EQ(t.at(20.0), 0.9);
    EXPECT_EQ(t.at(1e6), 0.9);
}

TEST(StepTrace, FirstLevelAppliesBeforeStart)
{
    StepTrace t({{5.0, 0.3}});
    EXPECT_EQ(t.at(0.0), 0.3);
}

TEST(DiurnalTrace, OscillatesBetweenBounds)
{
    DiurnalTrace t(0.1, 0.9, 100.0);
    EXPECT_NEAR(t.at(0.0), 0.1, 1e-9);    // trough
    EXPECT_NEAR(t.at(50.0), 0.9, 1e-9);   // peak
    EXPECT_NEAR(t.at(100.0), 0.1, 1e-9);  // next trough
    for (double time = 0.0; time < 200.0; time += 3.7) {
        EXPECT_GE(t.at(time), 0.1 - 1e-9);
        EXPECT_LE(t.at(time), 0.9 + 1e-9);
    }
}

TEST(BurstTrace, RectangularBursts)
{
    BurstTrace t(0.2, 0.6, 10.0, 2.0);
    EXPECT_NEAR(t.at(0.5), 0.8, 1e-12);   // in burst
    EXPECT_NEAR(t.at(1.99), 0.8, 1e-12);
    EXPECT_NEAR(t.at(2.01), 0.2, 1e-12);  // after burst
    EXPECT_NEAR(t.at(10.5), 0.8, 1e-12);  // next period
    EXPECT_NEAR(t.at(19.0), 0.2, 1e-12);
}

/** Writes content to a temp CSV and returns its path. */
std::string
writeTrace(const std::string &name, const std::string &content)
{
    const std::string path = "/tmp/" + name;
    std::ofstream out(path);
    out << content;
    return path;
}

TEST(FileTrace, LoadsCsvWithHeader)
{
    const std::string path = writeTrace(
        "ahq_trace_test.csv",
        "time_s,load\n0,0.1\n10,0.5\n\n20,0.9\n");
    FileTrace t(path);
    EXPECT_EQ(t.size(), 3u);
    EXPECT_NEAR(t.at(5.0), 0.1, 1e-12);
    EXPECT_NEAR(t.at(15.0), 0.5, 1e-12);
    EXPECT_NEAR(t.at(25.0), 0.9, 1e-12);
    std::remove(path.c_str());
}

/** Expects FileTrace(path) to throw mentioning "path:line". */
void
expectMalformedAt(const std::string &path, int line)
{
    try {
        FileTrace t(path);
        FAIL() << "expected a malformed-row error";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        const std::string anchor =
            path + ":" + std::to_string(line);
        EXPECT_NE(what.find(anchor), std::string::npos)
            << "error '" << what << "' does not point at "
            << anchor;
    }
    std::remove(path.c_str());
}

TEST(FileTrace, MalformedRowRaisesWithLineNumber)
{
    // Silently skipping "badline" used to shift every later step.
    expectMalformedAt(
        writeTrace("ahq_bad1.csv",
                   "time_s,load\n0,0.1\n10,0.5\nbadline\n20,0.9\n"),
        4);
}

TEST(FileTrace, TrailingGarbageIsMalformed)
{
    expectMalformedAt(
        writeTrace("ahq_bad2.csv", "0,0.1\n10,0.5x\n"), 2);
}

TEST(FileTrace, NegativeValuesAreMalformed)
{
    expectMalformedAt(
        writeTrace("ahq_bad3.csv", "0,0.1\n-10,0.5\n"), 2);
}

TEST(FileTrace, NonFiniteLoadIsMalformed)
{
    expectMalformedAt(
        writeTrace("ahq_bad4.csv", "0,0.1\n10,nan\n"), 2);
}

TEST(FileTrace, MissingCommaIsMalformed)
{
    expectMalformedAt(
        writeTrace("ahq_bad5.csv", "0,0.1\n10 0.5\n"), 2);
}

TEST(FileTrace, HeaderOnlyOnFirstLine)
{
    // A header-looking row past line 1 is data and must fail.
    expectMalformedAt(
        writeTrace("ahq_bad6.csv", "0,0.1\ntime_s,load\n"), 2);
}

TEST(FileTrace, UnsortedRowsAreSorted)
{
    const std::string path = "/tmp/ahq_trace_test2.csv";
    {
        std::ofstream out(path);
        out << "20,0.9\n0,0.1\n10,0.5\n";
    }
    FileTrace t(path);
    EXPECT_NEAR(t.at(15.0), 0.5, 1e-12);
    std::remove(path.c_str());
}

TEST(FileTrace, MissingFileThrows)
{
    EXPECT_THROW((void)FileTrace("/nonexistent/trace.csv"),
                 std::runtime_error);
}

TEST(FileTrace, EmptyFileThrows)
{
    const std::string path = "/tmp/ahq_trace_empty.csv";
    { std::ofstream out(path); out << "no,usable rows here\n"; }
    EXPECT_THROW((void)FileTrace(std::string(path)),
                 std::runtime_error);
    std::remove(path.c_str());
}

TEST(Fig13Trace, MatchesPaperTimeline)
{
    const auto t = fig13XapianTrace();
    EXPECT_NEAR(t->at(5.0), 0.10, 1e-12);
    EXPECT_NEAR(t->at(25.0), 0.30, 1e-12);
    EXPECT_NEAR(t->at(110.0), 0.70, 1e-12);
    EXPECT_NEAR(t->at(130.0), 0.90, 1e-12);
    EXPECT_NEAR(t->at(245.0), 0.10, 1e-12);
    // Load never exceeds 90% and never drops below 10%.
    for (double time = 0.0; time <= 250.0; time += 1.0) {
        EXPECT_GE(t->at(time), 0.10 - 1e-12);
        EXPECT_LE(t->at(time), 0.90 + 1e-12);
    }
}

} // namespace

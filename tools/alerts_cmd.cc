/**
 * @file
 * `ahq alerts` — list the SLO burn-rate alert transitions of a
 * JSONL trace produced with --trace --slo: the `alert_raise` /
 * `alert_clear` timeline in trace order plus per-(scenario, app)
 * totals. Alert events are never trace-sampled (the same contract
 * as `violation`), so the timeline here is complete whatever
 * --trace-sample produced the file.
 */

#include "cli.hh"

#include <map>
#include <stdexcept>
#include <vector>

#include "obs/json.hh"
#include "obs/scope.hh"
#include "obs/trace_reader.hh"
#include "report/table.hh"

namespace ahq::cli
{

namespace
{

struct AlertsOptions
{
    std::string path;
    std::string scenario; // empty = all
    std::string app;      // empty = all
    std::string format = "text"; // text | csv | json
};

AlertsOptions
parseAlertsArgs(const std::vector<std::string> &args)
{
    AlertsOptions opt;
    for (std::size_t i = 0; i < args.size(); ++i) {
        std::string a = args[i];
        std::string inline_value;
        bool has_inline = false;
        if (a.rfind("--", 0) == 0) {
            const auto eq = a.find('=');
            if (eq != std::string::npos) {
                inline_value = a.substr(eq + 1);
                a = a.substr(0, eq);
                has_inline = true;
            }
        }
        auto next = [&](const char *flag) -> std::string {
            if (has_inline)
                return inline_value;
            if (i + 1 >= args.size()) {
                throw std::invalid_argument(
                    std::string(flag) + " needs a value");
            }
            return args[++i];
        };
        if (a == "--scenario") {
            opt.scenario = next("--scenario");
        } else if (a == "--app") {
            opt.app = next("--app");
        } else if (a == "--format") {
            opt.format = next("--format");
            if (opt.format != "text" && opt.format != "csv" &&
                opt.format != "json") {
                throw std::invalid_argument(
                    "--format must be text, csv or json (got " +
                    opt.format + ")");
            }
        } else if (!a.empty() && a[0] == '-') {
            throw std::invalid_argument("unknown option: " + a);
        } else if (opt.path.empty()) {
            opt.path = a;
        } else {
            throw std::invalid_argument(
                "unexpected argument: " + a);
        }
    }
    if (opt.path.empty())
        throw std::invalid_argument("no trace file given");
    return opt;
}

/** One alert transition, in trace order. */
struct AlertRow
{
    std::string scenario;
    std::string app;
    bool raise = false;
    int epoch = 0;
    double burnFast = 0.0;
    double burnSlow = 0.0;
    int duration = 0; // clear events only
};

/** Per-(scenario, app) totals. */
struct AlertTotals
{
    long long raises = 0;
    long long clears = 0;
    long long alertEpochs = 0;
    double worstBurn = 0.0;
};

} // namespace

int
runAlerts(const std::vector<std::string> &args, std::ostream &out,
          std::ostream &err)
{
    AlertsOptions opt;
    try {
        opt = parseAlertsArgs(args);
    } catch (const std::exception &e) {
        err << "error: " << e.what() << "\n"
            << "usage: ahq alerts [--scenario=TAG] [--app=NAME] "
               "[--format=text|csv|json] <file.jsonl>\n";
        return 2;
    }

    std::vector<AlertRow> rows;
    std::map<std::pair<std::string, std::string>, AlertTotals>
        totals;
    try {
        obs::forEachTraceFile(
            opt.path, [&](const obs::TraceEvent &ev, int) {
                const int v =
                    static_cast<int>(ev.num("v", -1.0));
                if (v != obs::kSchemaVersion) {
                    throw std::runtime_error(
                        "unsupported schema version " +
                        std::to_string(v) +
                        " (this build reads v" +
                        std::to_string(obs::kSchemaVersion) + ")");
                }
                const std::string type = ev.type();
                const bool raise = type == "alert_raise";
                if (!raise && type != "alert_clear")
                    return;
                AlertRow r;
                r.scenario = ev.str("scenario");
                if (!opt.scenario.empty() &&
                    r.scenario != opt.scenario)
                    return;
                r.app = ev.str("app");
                if (!opt.app.empty() && r.app != opt.app)
                    return;
                r.raise = raise;
                r.epoch = static_cast<int>(ev.num("epoch"));
                r.burnFast = ev.num("burn_fast");
                r.burnSlow = ev.num("burn_slow");
                auto &t = totals[{r.scenario, r.app}];
                if (raise) {
                    ++t.raises;
                } else {
                    ++t.clears;
                    r.duration =
                        static_cast<int>(ev.num("duration"));
                    t.alertEpochs += r.duration;
                }
                t.worstBurn = std::max(t.worstBurn, r.burnFast);
                rows.push_back(std::move(r));
            });
    } catch (const std::exception &e) {
        err << "error: " << e.what() << "\n";
        return 1;
    }
    if (rows.empty()) {
        err << "error: " << opt.path
            << ": no matching alert events (produce them with "
               "--trace --slo)\n";
        return 1;
    }

    if (opt.format == "csv") {
        out << "scenario,app,event,epoch,burn_fast,burn_slow,"
               "duration\n";
        for (const auto &r : rows) {
            std::string line = r.scenario + "," + r.app + "," +
                (r.raise ? "raise" : "clear") + "," +
                std::to_string(r.epoch) + ",";
            obs::json::appendNumber(line, r.burnFast);
            line.push_back(',');
            obs::json::appendNumber(line, r.burnSlow);
            line.push_back(',');
            if (!r.raise)
                line += std::to_string(r.duration);
            out << line << "\n";
        }
        return 0;
    }

    if (opt.format == "json") {
        std::string b;
        b += "{\"v\":1,\"tool\":\"ahq alerts\",\"alerts\":[";
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const auto &r = rows[i];
            if (i > 0)
                b.push_back(',');
            b += "{\"scenario\":";
            obs::json::appendString(b, r.scenario);
            b += ",\"app\":";
            obs::json::appendString(b, r.app);
            b += ",\"event\":";
            obs::json::appendString(b,
                                    r.raise ? "raise" : "clear");
            b += ",\"epoch\":";
            obs::json::appendNumber(
                b, static_cast<long long>(r.epoch));
            b += ",\"burn_fast\":";
            obs::json::appendNumber(b, r.burnFast);
            b += ",\"burn_slow\":";
            obs::json::appendNumber(b, r.burnSlow);
            if (!r.raise) {
                b += ",\"duration\":";
                obs::json::appendNumber(
                    b, static_cast<long long>(r.duration));
            }
            b.push_back('}');
        }
        b += "],\"totals\":[";
        bool first = true;
        for (const auto &[key, t] : totals) {
            if (!first)
                b.push_back(',');
            first = false;
            b += "{\"scenario\":";
            obs::json::appendString(b, key.first);
            b += ",\"app\":";
            obs::json::appendString(b, key.second);
            b += ",\"raises\":";
            obs::json::appendNumber(b, t.raises);
            b += ",\"clears\":";
            obs::json::appendNumber(b, t.clears);
            b += ",\"active_at_end\":";
            obs::json::appendNumber(b, t.raises - t.clears);
            b += ",\"worst_burn_fast\":";
            obs::json::appendNumber(b, t.worstBurn);
            b.push_back('}');
        }
        b += "]}";
        out << b << "\n";
        return 0;
    }

    out << opt.path << ": " << rows.size()
        << " alert transition(s) (schema v" << obs::kSchemaVersion
        << ")\n";
    report::TextTable t({"scenario", "app", "event", "epoch",
                         "burn fast", "burn slow", "duration"});
    for (const auto &r : rows) {
        t.addRow({r.scenario.empty() ? "(untagged)" : r.scenario,
                  r.app, r.raise ? "RAISE" : "clear",
                  std::to_string(r.epoch),
                  report::TextTable::num(r.burnFast),
                  report::TextTable::num(r.burnSlow),
                  r.raise ? "-" : std::to_string(r.duration)});
    }
    t.print(out);
    report::TextTable tt({"scenario", "app", "raises", "clears",
                          "active at end", "worst burn"});
    for (const auto &[key, agg] : totals) {
        tt.addRow({key.first.empty() ? "(untagged)" : key.first,
                   key.second, std::to_string(agg.raises),
                   std::to_string(agg.clears),
                   std::to_string(agg.raises - agg.clears),
                   report::TextTable::num(agg.worstBurn)});
    }
    out << "totals:\n";
    tt.print(out);
    return 0;
}

} // namespace ahq::cli

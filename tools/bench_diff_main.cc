/**
 * @file
 * Standalone `bench_diff` binary: the same comparison `ahq
 * bench-diff` runs, packaged for CI pipelines that only have the
 * bench output directory (no ahq install). Exit 0 = clean, 1 =
 * regression flagged, 2 = usage/parse error.
 */

#include <iostream>
#include <vector>

#include "cli.hh"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    return ahq::cli::runBenchDiff(args, std::cout, std::cerr);
}

/**
 * @file
 * `ahq` CLI implementation.
 */

#include "cli.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "apps/catalog.hh"
#include "cluster/oracle.hh"
#include "exec/jobs.hh"
#include "fault/plan.hh"
#include "exec/scenario_runner.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "obs/timeseries.hh"
#include "obs/trace_sink.hh"
#include "report/csv.hh"
#include "report/table.hh"
#include "sched/registry.hh"

namespace ahq::cli
{

namespace
{

using sched::makeScheduler;

/** Apply --jobs (0 keeps the AHQ_JOBS / hardware default). */
void
applyJobs(const SimulateOptions &opt)
{
    if (opt.jobs > 0)
        exec::setDefaultJobs(opt.jobs);
}

std::vector<std::string>
splitCsvRow(const std::string &line)
{
    std::vector<std::string> cells;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ','))
        cells.push_back(cell);
    return cells;
}

double
parseDouble(const std::string &s, const std::string &what)
{
    try {
        std::size_t used = 0;
        const double v = std::stod(s, &used);
        if (used != s.size())
            throw std::invalid_argument("trailing characters");
        if (!std::isfinite(v))
            throw std::invalid_argument("not finite");
        return v;
    } catch (const std::exception &) {
        throw std::invalid_argument(
            "bad " + what + ": '" + s +
            "' (expected a finite number)");
    }
}

/** Parses an integer flag value; fractional input is an error. */
long long
parseInt(const std::string &s, const std::string &what)
{
    try {
        std::size_t used = 0;
        const long long v = std::stoll(s, &used);
        if (used != s.size())
            throw std::invalid_argument("trailing characters");
        return v;
    } catch (const std::exception &) {
        throw std::invalid_argument(
            "bad " + what + ": '" + s + "' (expected an integer)");
    }
}

/** parseInt plus a minimum, with the range in the error message. */
long long
parseIntAtLeast(const std::string &s, const std::string &flag,
                long long min_v)
{
    const long long v = parseInt(s, flag);
    if (v < min_v) {
        throw std::invalid_argument(
            flag + " must be >= " + std::to_string(min_v) +
            " (got " + s + ")");
    }
    return v;
}

} // namespace

/**
 * Print a run's blame ledger, largest attributed share first (ties
 * broken by key order, so the table is deterministic). `top` = 0
 * prints every row.
 */
void
printBlameTable(std::ostream &out,
                const obs::AttributionLedger &ledger,
                std::size_t top)
{
    auto rows = ledger.rows();
    std::stable_sort(rows.begin(), rows.end(),
                     [](const obs::AttributionRow &a,
                        const obs::AttributionRow &b) {
                         return a.share > b.share;
                     });
    if (top > 0 && rows.size() > top)
        rows.resize(top);
    report::TextTable t({"victim", "culprit", "resource",
                         "sum R_i share", "epochs"});
    for (const auto &r : rows) {
        t.addRow({r.victim, r.culprit, r.resource,
                  report::TextTable::num(r.share),
                  std::to_string(r.epochs)});
    }
    t.print(out);
}

/** One-line alert accounting for a run with --slo. */
void
printSloSummary(std::ostream &out, const obs::SloSummary &slo)
{
    out << "slo: raises = " << slo.raises
        << ", clears = " << slo.clears
        << ", active at end = " << slo.activeAtEnd
        << ", alert epochs = " << slo.alertEpochs
        << ", worst burn = "
        << report::TextTable::num(slo.worstBurn) << "\n";
}

SimulateOptions
parseSimulateArgs(const std::vector<std::string> &args,
                  bool require_apps)
{
    SimulateOptions opt;
    for (std::size_t i = 0; i < args.size(); ++i) {
        std::string a = args[i];
        // "--flag=value" is split here so every flag accepts both
        // spellings; positional "app=load" specs never start with
        // '-' and are untouched.
        std::string inline_value;
        bool has_inline = false;
        if (a.rfind("--", 0) == 0) {
            const auto eq = a.find('=');
            if (eq != std::string::npos) {
                inline_value = a.substr(eq + 1);
                a = a.substr(0, eq);
                has_inline = true;
            }
        }
        auto next = [&](const char *flag) -> std::string {
            if (has_inline)
                return inline_value;
            if (i + 1 >= args.size()) {
                throw std::invalid_argument(
                    std::string(flag) + " needs a value");
            }
            return args[++i];
        };
        if (a == "--strategy") {
            opt.strategy = next("--strategy");
        } else if (a == "--duration") {
            opt.durationSeconds =
                parseDouble(next("--duration"), "--duration");
            if (opt.durationSeconds <= 0.0) {
                throw std::invalid_argument(
                    "--duration must be a positive number of "
                    "seconds (got " +
                    std::to_string(opt.durationSeconds) + ")");
            }
        } else if (a == "--warmup") {
            opt.warmupEpochs = static_cast<int>(
                parseIntAtLeast(next("--warmup"), "--warmup", 0));
        } else if (a == "--cores") {
            opt.cores = static_cast<int>(
                parseIntAtLeast(next("--cores"), "--cores", 1));
        } else if (a == "--ways") {
            opt.ways = static_cast<int>(
                parseIntAtLeast(next("--ways"), "--ways", 1));
        } else if (a == "--bw") {
            opt.bwUnits = static_cast<int>(
                parseIntAtLeast(next("--bw"), "--bw", 1));
        } else if (a == "--seed") {
            opt.seed = static_cast<std::uint64_t>(
                parseIntAtLeast(next("--seed"), "--seed", 0));
        } else if (a == "--percentile") {
            opt.percentile =
                parseDouble(next("--percentile"), "--percentile");
            if (opt.percentile <= 0.0 || opt.percentile >= 1.0) {
                throw std::invalid_argument(
                    "--percentile must be in (0, 1), got " +
                    std::to_string(opt.percentile));
            }
        } else if (a == "--ri") {
            opt.ri = parseDouble(next("--ri"), "--ri");
            if (opt.ri < 0.0 || opt.ri > 1.0) {
                throw std::invalid_argument(
                    "--ri must be within [0, 1] (Eq. 7 weights "
                    "E_LC by RI), got " +
                    std::to_string(opt.ri));
            }
        } else if (a == "--check") {
            opt.checkMode = check::modeFromString(next("--check"));
            opt.checkModeExplicit = true;
        } else if (a == "--faults") {
            opt.faultsPath = next("--faults");
        } else if (a == "--csv") {
            opt.csvPath = next("--csv");
        } else if (a == "--trace") {
            opt.tracePath = next("--trace");
        } else if (a == "--trace-sample") {
            opt.traceSampleRate = parseDouble(
                next("--trace-sample"), "--trace-sample");
            if (opt.traceSampleRate < 0.0 ||
                opt.traceSampleRate > 1.0) {
                throw std::invalid_argument(
                    "--trace-sample must be within [0, 1] (the "
                    "per-epoch keep probability), got " +
                    std::to_string(opt.traceSampleRate));
            }
        } else if (a == "--metrics") {
            if (has_inline) {
                throw std::invalid_argument(
                    "--metrics does not take a value");
            }
            opt.dumpMetrics = true;
        } else if (a == "--attribute") {
            if (has_inline) {
                throw std::invalid_argument(
                    "--attribute does not take a value");
            }
            opt.attribute = true;
        } else if (a == "--slo") {
            if (has_inline) {
                throw std::invalid_argument(
                    "--slo does not take a value");
            }
            opt.slo = true;
        } else if (a == "--profile") {
            if (has_inline) {
                throw std::invalid_argument(
                    "--profile does not take a value");
            }
            opt.profile = true;
        } else if (a == "--jobs") {
            opt.jobs = static_cast<int>(
                parseIntAtLeast(next("--jobs"), "--jobs", 1));
        } else if (!a.empty() && a[0] == '-') {
            throw std::invalid_argument("unknown option: " + a);
        } else {
            const auto eq = a.find('=');
            if (eq == std::string::npos) {
                opt.beApps.push_back(a);
            } else {
                opt.lcApps.emplace_back(
                    a.substr(0, eq),
                    parseDouble(a.substr(eq + 1), "load"));
            }
        }
    }
    if (require_apps && opt.lcApps.empty() && opt.beApps.empty()) {
        throw std::invalid_argument(
            "no applications given (expected app=load or be_app)");
    }
    if (opt.tracePath.empty()) {
        if (const char *env = std::getenv("AHQ_TRACE"))
            opt.tracePath = env;
    }
    if (opt.faultsPath.empty()) {
        if (const char *env = std::getenv("AHQ_FAULTS"))
            opt.faultsPath = env;
    }
    if (!opt.profile) {
        if (const char *env = std::getenv("AHQ_PROF"))
            opt.profile = env[0] != '\0' &&
                std::string(env) != "0";
    }
    return opt;
}

void
parseObservationsCsv(const std::string &path,
                     std::vector<core::LcObservation> &lc,
                     std::vector<core::BeObservation> &be)
{
    std::ifstream in(path);
    if (!in.is_open())
        throw std::runtime_error("cannot open: " + path);
    std::string line;
    int row = 0;
    while (std::getline(in, line)) {
        ++row;
        if (line.empty() || line[0] == '#')
            continue;
        const auto cells = splitCsvRow(line);
        if (cells.empty())
            continue;
        if (cells[0] == "kind")
            continue; // header
        const std::string where =
            path + ":" + std::to_string(row);
        if (cells[0] == "lc") {
            if (cells.size() < 5) {
                throw std::invalid_argument(
                    where + ": lc rows need 5 columns");
            }
            lc.push_back({parseDouble(cells[2], "ideal_ms"),
                          parseDouble(cells[3], "actual_ms"),
                          parseDouble(cells[4], "threshold_ms")});
        } else if (cells[0] == "be") {
            if (cells.size() < 4) {
                throw std::invalid_argument(
                    where + ": be rows need 4 columns");
            }
            be.push_back({parseDouble(cells[2], "ipc_solo"),
                          parseDouble(cells[3], "ipc_real")});
        } else {
            throw std::invalid_argument(
                where + ": kind must be 'lc' or 'be'");
        }
    }
    if (lc.empty() && be.empty())
        throw std::invalid_argument(path + ": no observations");
}

int
runEntropy(const std::vector<std::string> &args, std::ostream &out,
           std::ostream &err)
{
    if (args.size() != 1) {
        err << "usage: ahq entropy <observations.csv>\n";
        return 2;
    }
    std::vector<core::LcObservation> lc;
    std::vector<core::BeObservation> be;
    try {
        parseObservationsCsv(args[0], lc, be);
    } catch (const std::exception &e) {
        err << "error: " << e.what() << "\n";
        return 1;
    }
    const auto rep = core::computeEntropy(lc, be);
    report::TextTable t({"app", "A_i", "R_i", "ReT_i", "Q_i"});
    for (std::size_t i = 0; i < rep.lcDetail.size(); ++i) {
        const auto &b = rep.lcDetail[i];
        t.addRow({"lc" + std::to_string(i),
                  report::TextTable::num(b.tolerance),
                  report::TextTable::num(b.interference),
                  report::TextTable::num(b.remainingTolerance),
                  report::TextTable::num(b.intolerable)});
    }
    t.print(out);
    out << "E_LC = " << rep.eLc << "\nE_BE = " << rep.eBe
        << "\nE_S  = " << rep.eS << "  (RI = 0.8)\nyield = "
        << rep.yieldValue << "\n";
    return 0;
}

int
runSimulate(const std::vector<std::string> &args, std::ostream &out,
            std::ostream &err)
{
    SimulateOptions opt;
    try {
        opt = parseSimulateArgs(args);
    } catch (const std::exception &e) {
        err << "error: " << e.what() << "\n";
        return 2;
    }

    try {
        applyJobs(opt);
        std::vector<cluster::ColocatedApp> colocated;
        for (const auto &[name, load] : opt.lcApps)
            colocated.push_back(
                cluster::lcAt(apps::byName(name), load));
        for (const auto &name : opt.beApps)
            colocated.push_back(cluster::be(apps::byName(name)));

        const auto mc = machine::MachineConfig::xeonE52630v4()
                            .withAvailable(opt.cores, opt.ways,
                                           opt.bwUnits);
        cluster::Node node(mc, std::move(colocated));

        cluster::SimulationConfig cfg;
        cfg.durationSeconds = opt.durationSeconds;
        cfg.warmupEpochs = opt.warmupEpochs;
        cfg.seed = opt.seed;
        cfg.tailPercentile = opt.percentile;
        cfg.ri = opt.ri;
        cfg.checkMode = opt.checkMode;
        cfg.traceSampleRate = opt.traceSampleRate;
        cfg.attribute = opt.attribute;
        cfg.slo = opt.slo;

        // The plan must outlive the run: cfg holds a pointer.
        fault::FaultPlan plan;
        if (!opt.faultsPath.empty()) {
            plan = fault::FaultPlan::fromFile(opt.faultsPath);
            cfg.faults = &plan;
        }

        std::unique_ptr<obs::FileTraceSink> sink;
        obs::MetricsRegistry metrics;
        obs::SpanProfiler prof;
        obs::TimeSeriesRegistry tseries;
        if (!opt.tracePath.empty()) {
            sink = std::make_unique<obs::FileTraceSink>(
                opt.tracePath);
            cfg.obs.sink = sink.get();
            cfg.obs.scenario = opt.strategy;
            // Time-series record every epoch regardless of
            // --trace-sample, so `ahq timeline` sees the full run
            // even from a heavily sampled trace.
            cfg.obs.series = &tseries;
        }
        if (opt.dumpMetrics || sink || opt.profile)
            cfg.obs.metrics = &metrics;
        if (opt.profile) {
            cfg.obs.prof = &prof;
            // A single run owns its trace, so the span events may
            // carry wall-clock fields (they differ run to run, but
            // there is no --jobs fan-out here to stay identical
            // across).
            cfg.obs.wallClock = true;
            if (cfg.obs.scenario.empty())
                cfg.obs.scenario = opt.strategy;
        }

        const auto sched = makeScheduler(opt.strategy);
        cluster::EpochSimulator sim(node, cfg);
        const auto res = sim.run(*sched);
        if (opt.profile)
            prof.flush(cfg.obs);

        report::TextTable t({"app", "kind", "tail (ms)",
                             "threshold", "IPC", "IPC solo"});
        for (int i = 0; i < node.numApps(); ++i) {
            const auto &p = node.profile(i);
            const auto ui = static_cast<std::size_t>(i);
            t.addRow({p.name, p.latencyCritical ? "LC" : "BE",
                      p.latencyCritical ?
                          report::TextTable::num(res.meanP95Ms[ui],
                                                 2) : "-",
                      p.latencyCritical ?
                          report::TextTable::num(
                              p.tailThresholdMs, 2) : "-",
                      p.latencyCritical ? "-" :
                          report::TextTable::num(res.meanIpc[ui],
                                                 2),
                      p.latencyCritical ? "-" :
                          report::TextTable::num(p.ipcSolo, 2)});
        }
        t.print(out);
        out << "strategy = " << opt.strategy
            << ", E_LC = " << res.meanELc
            << ", E_BE = " << res.meanEBe
            << ", E_S = " << res.meanES
            << ", yield = " << res.yieldValue
            << ", violations = " << res.violations << "\n";

        if (opt.attribute && !res.attribution.empty()) {
            out << "interference attribution (post-warmup sum of "
                   "per-epoch R_i shares):\n";
            printBlameTable(out, res.attribution, 12);
        } else if (opt.attribute) {
            out << "interference attribution: no LC app suffered "
                   "interference after warmup\n";
        }
        if (opt.slo)
            printSloSummary(out, res.slo);

        if (!opt.csvPath.empty()) {
            report::CsvWriter csv(
                opt.csvPath,
                {"time_s", "e_lc", "e_be", "e_s"});
            for (const auto &rec : res.epochs) {
                csv.addRow({report::TextTable::num(rec.time, 2),
                            report::TextTable::num(rec.entropy.eLc),
                            report::TextTable::num(rec.entropy.eBe),
                            report::TextTable::num(rec.entropy.eS)});
            }
            out << "timeline written to " << opt.csvPath << "\n";
        }
        if (opt.profile) {
            out << "profile (span tree):\n";
            printSpanProfile(out, prof, /*wall_times=*/true);
        }
        if (sink) {
            // Series events come last: the folded per-run
            // summaries close the trace deterministically.
            tseries.flush(cfg.obs);
            sink->flush();
            out << "trace written to " << sink->path() << "\n";
        }
        if (opt.dumpMetrics)
            metrics.print(out);
        return 0;
    } catch (const std::exception &e) {
        err << "error: " << e.what() << "\n";
        return 1;
    }
}

int
runOracle(const std::vector<std::string> &args, std::ostream &out,
          std::ostream &err)
{
    // Reuse the simulate grammar; --waystep rides on top.
    std::vector<std::string> passthrough;
    int way_step = 2;
    for (std::size_t i = 0; i < args.size(); ++i) {
        std::string value;
        if (args[i] == "--waystep") {
            if (i + 1 >= args.size()) {
                err << "error: --waystep needs a value\n";
                return 2;
            }
            value = args[++i];
        } else if (args[i].rfind("--waystep=", 0) == 0) {
            value = args[i].substr(std::string("--waystep=").size());
        } else {
            passthrough.push_back(args[i]);
            continue;
        }
        try {
            way_step = static_cast<int>(
                parseIntAtLeast(value, "--waystep", 1));
        } catch (const std::exception &e) {
            err << "error: " << e.what() << "\n";
            return 2;
        }
    }

    SimulateOptions opt;
    try {
        opt = parseSimulateArgs(passthrough);
    } catch (const std::exception &e) {
        err << "error: " << e.what() << "\n";
        return 2;
    }

    try {
        applyJobs(opt);
        std::vector<cluster::ColocatedApp> colocated;
        for (const auto &[name, load] : opt.lcApps)
            colocated.push_back(
                cluster::lcAt(apps::byName(name), load));
        for (const auto &name : opt.beApps)
            colocated.push_back(cluster::be(apps::byName(name)));
        const auto mc = machine::MachineConfig::xeonE52630v4()
                            .withAvailable(opt.cores, opt.ways,
                                           opt.bwUnits);
        cluster::Node node(mc, std::move(colocated));

        cluster::OracleConfig ocfg;
        ocfg.wayStep = way_step;
        ocfg.tailPercentile = opt.percentile;

        const auto iso = cluster::bestIsolatedPartition(node, ocfg);
        const auto hyb = cluster::bestHybridPartition(node, ocfg);

        out << "best fully-isolated partition (E_S = "
            << iso.report.eS << ", " << iso.evaluated
            << " layouts searched):\n"
            << iso.layout.toString();
        out << "best hybrid partition (E_S = " << hyb.report.eS
            << ", " << hyb.evaluated << " layouts searched):\n"
            << hyb.layout.toString();
        out << "sharing value (iso - hybrid E_S): "
            << iso.report.eS - hyb.report.eS << "\n";
        return 0;
    } catch (const std::exception &e) {
        err << "error: " << e.what() << "\n";
        return 1;
    }
}

int
runSweep(const std::vector<std::string> &args, std::ostream &out,
         std::ostream &err)
{
    SimulateOptions opt;
    try {
        opt = parseSimulateArgs(args);
        if (opt.lcApps.empty()) {
            throw std::invalid_argument(
                "sweep needs at least one LC app (app=load)");
        }
    } catch (const std::exception &e) {
        err << "error: " << e.what() << "\n";
        return 2;
    }

    try {
        applyJobs(opt);
        const auto mc = machine::MachineConfig::xeonE52630v4()
                            .withAvailable(opt.cores, opt.ways,
                                           opt.bwUnits);
        const std::vector<std::string> strategies{
            "Unmanaged", "LC-first", "PARTIES", "CLITE", "ARQ"};
        const std::vector<double> loads{0.1, 0.3, 0.5, 0.7, 0.9};

        // Shared by every job below; must outlive runner.run().
        fault::FaultPlan plan;
        const bool faulting = !opt.faultsPath.empty();
        if (faulting)
            plan = fault::FaultPlan::fromFile(opt.faultsPath);

        std::unique_ptr<obs::FileTraceSink> sink;
        obs::MetricsRegistry metrics;
        obs::SpanProfiler prof;
        obs::TimeSeriesRegistry tseries;
        obs::Scope scope;
        if (!opt.tracePath.empty()) {
            sink = std::make_unique<obs::FileTraceSink>(
                opt.tracePath);
            scope.sink = sink.get();
            // Per-job scenario tags keep concurrent jobs on
            // disjoint series; the flush below walks the sorted
            // key set, so the series block is byte-identical at
            // any --jobs.
            scope.series = &tseries;
        }
        if (opt.dumpMetrics || sink || opt.profile)
            scope.metrics = &metrics;
        // wallClock stays off: the runner fans jobs across --jobs
        // threads, and span-bearing traces must stay byte-identical
        // at any thread count. The console tree below still shows
        // wall times (stdout is not the trace).
        if (opt.profile)
            scope.prof = &prof;

        // One tagged job per (load, strategy), fanned across the
        // pool; results and (while tracing) trace buffers come back
        // in job order, so the output is identical at any --jobs.
        std::vector<exec::ScenarioJob> jobs;
        for (double load : loads) {
            std::vector<cluster::ColocatedApp> colocated;
            colocated.push_back(
                cluster::lcAt(apps::byName(opt.lcApps[0].first),
                              load));
            for (std::size_t i = 1; i < opt.lcApps.size(); ++i) {
                colocated.push_back(cluster::lcAt(
                    apps::byName(opt.lcApps[i].first),
                    opt.lcApps[i].second));
            }
            for (const auto &name : opt.beApps)
                colocated.push_back(
                    cluster::be(apps::byName(name)));
            cluster::Node node(mc, std::move(colocated));

            cluster::SimulationConfig cfg;
            cfg.durationSeconds = opt.durationSeconds;
            cfg.warmupEpochs = opt.warmupEpochs;
            cfg.seed = opt.seed;
            cfg.tailPercentile = opt.percentile;
            cfg.ri = opt.ri;
            cfg.checkMode = opt.checkMode;
            cfg.traceSampleRate = opt.traceSampleRate;
            cfg.attribute = opt.attribute;
            cfg.slo = opt.slo;
            if (faulting)
                cfg.faults = &plan;

            const std::string load_tag =
                report::TextTable::num(load * 100, 0) + "%";
            for (const auto &name : strategies) {
                jobs.push_back({name, node, cfg,
                                name + "@" + load_tag});
            }
        }

        exec::ScenarioRunner runner;
        runner.setObsScope(scope);
        const auto results = runner.run(jobs);

        std::vector<std::string> header{opt.lcApps[0].first +
                                        " load"};
        header.insert(header.end(), strategies.begin(),
                      strategies.end());
        report::TextTable t(header);
        std::size_t job = 0;
        for (double load : loads) {
            std::vector<std::string> row{
                report::TextTable::num(load * 100, 0) + "%"};
            for (std::size_t s = 0; s < strategies.size(); ++s) {
                row.push_back(report::TextTable::num(
                    results[job++].meanES));
            }
            t.addRow(row);
        }
        out << "E_S by strategy ("
            << opt.lcApps[0].first << " sweeping):\n";
        t.print(out);
        if (opt.profile) {
            out << "profile (span tree, all scenarios merged):\n";
            printSpanProfile(out, prof, /*wall_times=*/true);
        }
        if (sink) {
            tseries.flush(scope);
            sink->flush();
            out << "trace written to " << sink->path() << "\n";
        }
        if (opt.dumpMetrics)
            metrics.print(out);
        return 0;
    } catch (const std::exception &e) {
        err << "error: " << e.what() << "\n";
        return 1;
    }
}

int
runChaos(const std::vector<std::string> &args, std::ostream &out,
         std::ostream &err)
{
    SimulateOptions opt;
    try {
        opt = parseSimulateArgs(args, /*require_apps=*/false);
    } catch (const std::exception &e) {
        err << "error: " << e.what() << "\n";
        return 2;
    }

    try {
        applyJobs(opt);
        // Canonical chaos colocation when no apps were given.
        if (opt.lcApps.empty() && opt.beApps.empty()) {
            opt.lcApps = {{"xapian", 0.5},
                          {"moses", 0.2},
                          {"img-dnn", 0.2}};
            opt.beApps = {"stream"};
        }
        std::vector<cluster::ColocatedApp> colocated;
        for (const auto &[name, load] : opt.lcApps)
            colocated.push_back(
                cluster::lcAt(apps::byName(name), load));
        for (const auto &name : opt.beApps)
            colocated.push_back(cluster::be(apps::byName(name)));
        const auto mc = machine::MachineConfig::xeonE52630v4()
                            .withAvailable(opt.cores, opt.ways,
                                           opt.bwUnits);
        cluster::Node node(mc, std::move(colocated));

        const fault::FaultPlan plan =
            opt.faultsPath.empty()
                ? fault::FaultPlan::builtinChaos()
                : fault::FaultPlan::fromFile(opt.faultsPath);

        cluster::SimulationConfig cfg;
        cfg.durationSeconds = opt.durationSeconds;
        cfg.warmupEpochs = opt.warmupEpochs;
        cfg.seed = opt.seed;
        cfg.tailPercentile = opt.percentile;
        cfg.ri = opt.ri;
        // Chaos exists to prove the invariants hold under faults,
        // so the auditor is strict unless --check says otherwise.
        cfg.checkMode = opt.checkModeExplicit ? opt.checkMode
                                              : check::Mode::Strict;
        cfg.faults = &plan;
        cfg.traceSampleRate = opt.traceSampleRate;
        cfg.attribute = opt.attribute;
        cfg.slo = opt.slo;

        std::unique_ptr<obs::FileTraceSink> sink;
        obs::MetricsRegistry metrics;
        obs::SpanProfiler prof;
        obs::TimeSeriesRegistry tseries;
        obs::Scope scope;
        if (!opt.tracePath.empty()) {
            sink = std::make_unique<obs::FileTraceSink>(
                opt.tracePath);
            scope.sink = sink.get();
            // As in sweep: per-strategy tags keep the series
            // disjoint and the sorted flush keeps them
            // byte-identical at any --jobs.
            scope.series = &tseries;
        }
        // Metrics are always on: the summary below reads them.
        scope.metrics = &metrics;
        // As in sweep: profiler on, wallClock off (trace identity
        // across --jobs).
        if (opt.profile)
            scope.prof = &prof;

        std::vector<exec::ScenarioJob> jobs;
        for (const auto &name : sched::allStrategyNames())
            jobs.push_back({name, node, cfg, name});

        exec::ScenarioRunner runner;
        runner.setObsScope(scope);
        const auto results = runner.run(jobs);

        out << "chaos over " << node.describe() << " ("
            << (opt.faultsPath.empty() ? "built-in plan"
                                       : opt.faultsPath)
            << ", check=" << check::toString(cfg.checkMode)
            << "):\n";
        report::TextTable t(
            {"strategy", "E_S", "yield", "violations"});
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            t.addRow({jobs[i].strategy,
                      report::TextTable::num(results[i].meanES),
                      report::TextTable::num(
                          results[i].yieldValue),
                      std::to_string(results[i].violations)});
        }
        t.print(out);

        auto line = [&](const char *label, const char *name) {
            out << "  " << label << " = "
                << static_cast<long long>(metrics.counter(name))
                << "\n";
        };
        out << "fault injection:\n";
        line("measurement drops", "fault.measurement_drop");
        line("actuation failures", "fault.actuation_fail");
        line("decisions skipped", "fault.decision_skipped");
        out << "recovery:\n";
        line("measurement recoveries", "recovery.measurement");
        line("actuation retries won", "recovery.actuation_retry");

        if (opt.profile) {
            out << "profile (span tree, all strategies merged):\n";
            printSpanProfile(out, prof, /*wall_times=*/true);
        }
        if (sink) {
            tseries.flush(scope);
            sink->flush();
            out << "trace written to " << sink->path() << "\n";
        }
        if (opt.dumpMetrics)
            metrics.print(out);
        return 0;
    } catch (const check::InvariantViolation &e) {
        err << "invariant violation under faults: " << e.what()
            << "\n";
        return 1;
    } catch (const std::exception &e) {
        err << "error: " << e.what() << "\n";
        return 1;
    }
}

int
runApps(std::ostream &out)
{
    report::TextTable t({"name", "kind", "threshold (ms)",
                         "max load (QPS)", "threads"});
    for (const auto &name : apps::allNames()) {
        const auto p = apps::byName(name);
        t.addRow({p.name, p.latencyCritical ? "LC" : "BE",
                  p.latencyCritical ?
                      report::TextTable::num(p.tailThresholdMs, 2) :
                      "-",
                  p.latencyCritical ?
                      report::TextTable::num(p.maxLoadQps, 1) : "-",
                  std::to_string(p.threads)});
    }
    t.print(out);
    return 0;
}

int
runStrategies(std::ostream &out)
{
    for (const auto &s : sched::allStrategyNames())
        out << s << "\n";
    return 0;
}

int
runChecks(std::ostream &out)
{
    report::TextTable t({"check", "reference", "summary"});
    for (const auto &c : check::registeredChecks())
        t.addRow({c.name, c.reference, c.summary});
    t.print(out);
    out << "enable with AHQ_CHECK=log|strict or --check "
           "(simulate/sweep)\n";
    return 0;
}

int
dispatch(const std::vector<std::string> &argv, std::ostream &out,
         std::ostream &err)
{
    auto usage = [](std::ostream &os) {
        os << "usage: ahq <subcommand> [args]\n"
              "  entropy <obs.csv>          E_S from measurements\n"
              "  simulate [opts] app=load.. one colocation run\n"
              "  sweep [opts] app=load..    Fig.8-style E_S table\n"
              "  chaos [opts] [app=load..]  all strategies under "
              "an injected fault plan\n"
              "  fleet [opts]               datacenter-scale fleet "
              "under the global load generator (--nodes N --lc N "
              "--be N --tenants M --zipf S --rebalance-every E "
              "--spread T --keep-epochs)\n"
              "  experiment <verb> [opts]   online A/B policy "
              "experiment on the fleet: design | run | analyze | "
              "verdict (--design switchback|interleaved --arm-a S "
              "--arm-b S --nodes N --blocks N --block-epochs N "
              "--resamples N --confidence C)\n"
              "  oracle [opts] app=load..   best static partitions\n"
              "  trace <file.jsonl>         summarise a --trace "
              "run\n"
              "  why [opts] <file.jsonl>    blame table from a "
              "--trace --attribute run: who hurts each LC app, "
              "through which resource (--scenario TAG --app NAME "
              "--top N --format text|csv|json)\n"
              "  alerts [opts] <file.jsonl> SLO alert timeline of "
              "a --trace --slo run (--scenario TAG --app NAME "
              "--format text|csv|json)\n"
              "  timeline [opts] <file.jsonl>  per-series "
              "sparkline / csv / json timelines of a --trace run\n"
              "  profile <file.jsonl>       span tree of a "
              "--profile run\n"
              "  report [opts] <input>...   fold traces + "
              "BENCH_*.json into one summary\n"
              "  bench-diff <old> <new>     per-benchmark "
              "speedups + regression gate between two "
              "BENCH_*.json (or --baseline <old> <new>)\n"
              "  apps                       workload catalogue\n"
              "  strategies                 scheduler registry\n"
              "  checks                     invariant-audit "
              "registry\n"
              "options (simulate/sweep/oracle): --strategy S "
              "--duration S --warmup N\n"
              "  --cores N --ways N --bw N --seed N "
              "--percentile P --ri R --csv FILE --waystep N\n"
              "  --jobs N (worker threads; default AHQ_JOBS or "
              "all cores)\n"
              "  --trace FILE (JSONL decision trace; env "
              "AHQ_TRACE) --metrics (dump counters)\n"
              "  --trace-sample R (keep each epoch's trace events "
              "with probability R in [0,1]; seeded, so sampled "
              "traces stay byte-identical at any --jobs)\n"
              "  --profile (span profiler + tree; env AHQ_PROF; "
              "sweep/chaos keep traces byte-identical)\n"
              "  --attribute (counterfactual interference "
              "attribution: blame ledger + attribution trace "
              "events) --slo (burn-rate SLO alerts)\n"
              "  --check off|log|strict (invariant audit; env "
              "AHQ_CHECK)\n"
              "  --faults FILE (JSONL fault plan; env AHQ_FAULTS; "
              "chaos defaults to a built-in plan)\n"
              "  (flags also accept --flag=value)\n"
              "strategies (--strategy):";
        for (const auto &s : sched::allStrategyNames())
            os << " " << s;
        os << "\n";
    };
    if (argv.empty()) {
        usage(err);
        return 2;
    }
    if (argv[0] == "help" || argv[0] == "--help" ||
        argv[0] == "-h") {
        usage(out);
        return 0;
    }
    const std::string cmd = argv[0];
    const std::vector<std::string> rest(argv.begin() + 1,
                                        argv.end());
    if (cmd == "entropy")
        return runEntropy(rest, out, err);
    if (cmd == "simulate")
        return runSimulate(rest, out, err);
    if (cmd == "oracle")
        return runOracle(rest, out, err);
    if (cmd == "sweep")
        return runSweep(rest, out, err);
    if (cmd == "fleet")
        return runFleet(rest, out, err);
    if (cmd == "chaos")
        return runChaos(rest, out, err);
    if (cmd == "experiment")
        return runExperiment(rest, out, err);
    if (cmd == "trace")
        return runTrace(rest, out, err);
    if (cmd == "why")
        return runWhy(rest, out, err);
    if (cmd == "alerts")
        return runAlerts(rest, out, err);
    if (cmd == "timeline")
        return runTimeline(rest, out, err);
    if (cmd == "profile")
        return runProfile(rest, out, err);
    if (cmd == "report")
        return runReport(rest, out, err);
    if (cmd == "bench-diff")
        return runBenchDiff(rest, out, err);
    if (cmd == "apps")
        return runApps(out);
    if (cmd == "strategies")
        return runStrategies(out);
    if (cmd == "checks")
        return runChecks(out);
    err << "unknown subcommand: " << cmd << "\n";
    return 2;
}

} // namespace ahq::cli

/**
 * @file
 * The `ahq` command-line tool's parsing and execution layer, kept
 * separate from main() so the test suite can exercise it.
 *
 * Subcommands:
 *   ahq entropy <observations.csv>
 *       Compute E_LC / E_BE / E_S from measured observations.
 *       CSV rows: "lc,<name>,<ideal_ms>,<actual_ms>,<threshold_ms>"
 *               | "be,<name>,<ipc_solo>,<ipc_real>"
 *   ahq simulate [options] <app>=<load>... <be_app>...
 *       Simulate a colocation under a strategy.
 *   ahq chaos [options] [<app>=<load>... <be_app>...]
 *       Run every strategy under an injected fault plan with the
 *       strict invariant auditor watching (see docs/FAULTS.md).
 *   ahq apps | ahq strategies
 *       List the catalogue / the strategy registry.
 */

#ifndef AHQ_TOOLS_CLI_HH
#define AHQ_TOOLS_CLI_HH

#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "check/check.hh"
#include "cluster/epoch_sim.hh"
#include "core/entropy.hh"

namespace ahq::obs
{
class SpanProfiler;
} // namespace ahq::obs

namespace ahq::cli
{

/** Parsed command line for the simulate subcommand. */
struct SimulateOptions
{
    std::string strategy = "ARQ";
    double durationSeconds = 120.0;
    int warmupEpochs = 120;
    int cores = 10;
    int ways = 20;
    int bwUnits = 10;
    std::uint64_t seed = 42;
    double percentile = 0.95;

    /** Relative importance of LC in E_S (--ri, Eq. 7's RI). */
    double ri = core::kDefaultRelativeImportance;

    /**
     * Invariant-audit mode (--check off|log|strict); defaults to
     * the AHQ_CHECK environment variable.
     */
    check::Mode checkMode = check::modeFromEnv();

    /** True when --check appeared (chaos defaults to strict). */
    bool checkModeExplicit = false;

    /**
     * JSONL fault plan (--faults, or the AHQ_FAULTS environment
     * variable when the flag is absent); empty = no injection.
     */
    std::string faultsPath;

    std::string csvPath; // empty = no CSV dump

    /**
     * JSONL trace destination (--trace, or the AHQ_TRACE
     * environment variable when the flag is absent); empty = off.
     */
    std::string tracePath;

    /**
     * Head-based trace sampling rate (--trace-sample, in [0, 1];
     * default 1 = keep every epoch). Below 1, each epoch's trace
     * events are kept iff a seeded draw on the epoch's own RNG
     * split lands under the rate — a pure function of
     * (seed, run, node, epoch), so sampled traces stay
     * byte-identical at any --jobs while tracing a large fleet
     * costs bounded IO. Time-series recording is never sampled.
     */
    double traceSampleRate = 1.0;

    /** Dump the metrics registry after the run (--metrics). */
    bool dumpMetrics = false;

    /**
     * Counterfactual interference attribution (--attribute): build
     * the per-(victim, culprit, resource) blame ledger during the
     * run, print it afterwards and emit `attribution` trace events
     * when tracing. Off by default — the dormant seam is one branch
     * per epoch.
     */
    bool attribute = false;

    /**
     * Online SLO burn-rate monitoring (--slo): feed each LC app's
     * per-epoch violation bit to the multi-window burn-rate
     * detector, print the alert totals and emit `alert_raise` /
     * `alert_clear` trace events when tracing. Off by default.
     */
    bool slo = false;

    /**
     * Self-profile the run (--profile, or the AHQ_PROF environment
     * variable): attach a SpanProfiler to the hot paths and print
     * the span tree afterwards. simulate turns wall-clock fields on
     * (a single run owns its trace); sweep/chaos keep them off so
     * span-bearing traces stay byte-identical at any --jobs.
     */
    bool profile = false;

    /**
     * Worker threads for parallel paths (the oracle search); 0 =
     * keep the AHQ_JOBS / hardware default. Results are identical
     * at any thread count.
     */
    int jobs = 0;

    /** "name=load" LC entries and bare BE names, in order. */
    std::vector<std::pair<std::string, double>> lcApps;
    std::vector<std::string> beApps;
};

/**
 * Parse simulate-subcommand arguments (everything after the
 * subcommand word). Flags accept both "--flag value" and
 * "--flag=value". Numeric flags are validated eagerly — a
 * fractional --cores, a zero --jobs or an out-of-range --ri fails
 * here with a message naming the flag and the accepted range,
 * instead of surfacing later as a confusing simulation result.
 *
 * @param require_apps When true (the default) at least one app spec
 *        must be present; chaos passes false and falls back to a
 *        canonical colocation.
 *
 * @throws std::invalid_argument on malformed input.
 */
SimulateOptions
parseSimulateArgs(const std::vector<std::string> &args,
                  bool require_apps = true);

/**
 * Parse an observations CSV into entropy inputs.
 *
 * @throws std::invalid_argument on malformed rows,
 *         std::runtime_error when the file cannot be read.
 */
void parseObservationsCsv(const std::string &path,
                          std::vector<core::LcObservation> &lc,
                          std::vector<core::BeObservation> &be);

/** Run `ahq entropy`. Returns a process exit code. */
int runEntropy(const std::vector<std::string> &args,
               std::ostream &out, std::ostream &err);

/** Run `ahq simulate`. Returns a process exit code. */
int runSimulate(const std::vector<std::string> &args,
                std::ostream &out, std::ostream &err);

/**
 * Run `ahq oracle`: search the best static partition of both
 * families (isolated / hybrid) for a colocation. Accepts the same
 * app specs and machine flags as simulate, plus --waystep.
 */
int runOracle(const std::vector<std::string> &args,
              std::ostream &out, std::ostream &err);

/**
 * Run `ahq chaos`: run every registered strategy over one
 * colocation with a fault plan injected (--faults / AHQ_FAULTS, or
 * a built-in plan when neither is given) and the invariant auditor
 * in strict mode unless --check overrides it. Prints the
 * per-strategy entropy table plus the fault / recovery counters.
 * Accepts simulate's grammar; app specs are optional (a canonical
 * chaos colocation is used when none are given).
 */
int runChaos(const std::vector<std::string> &args, std::ostream &out,
             std::ostream &err);

/**
 * Run `ahq fleet`: simulate a datacenter-scale fleet whose
 * workload comes from the global load generator (diurnal curves,
 * Zipf tenant skew, flash crowds over --nodes x --tenants),
 * aggregated through the streaming fleet accumulators. With
 * --rebalance-every E the entropy-driven ClusterScheduler
 * migrates apps off the hottest node between E-epoch rounds
 * (--spread sets the trigger); without it one plain Fleet::run.
 * Accepts simulate's option grammar (no app specs — the generator
 * synthesizes the workload) plus --nodes --lc --be --tenants
 * --zipf --rebalance-every --spread --keep-epochs
 * (implemented in fleet_cmd.cc).
 */
int runFleet(const std::vector<std::string> &args, std::ostream &out,
             std::ostream &err);

/**
 * Run `ahq experiment <design|run|analyze|verdict>`: online
 * two-arm policy experiments over the fleet's policy-swap seam
 * (src/experiment/). `design` prints the randomized (node x block)
 * arm assignment — a pure function of (seed, design) — `run`
 * executes it and prints the naive / Differences-in-Q / mixed
 * contrast estimates with bootstrap CIs and the verdict, `analyze`
 * re-estimates from a run's trace (experiment_block events), and
 * `verdict` prints just the one-line outcome. Flags: --design
 * switchback|interleaved --arm-a S --arm-b S --nodes N --blocks N
 * --block-epochs N --resamples N --confidence C plus the fleet
 * workload shape (--lc --be --tenants --zipf) and simulate's
 * option grammar (implemented in experiment_cmd.cc).
 */
int runExperiment(const std::vector<std::string> &args,
                  std::ostream &out, std::ostream &err);

/**
 * Run `ahq sweep`: sweep the FIRST LC app's load from 10% to 90%
 * (its given load is ignored) under every strategy, printing the
 * E_S table — a command-line Fig. 8. Accepts simulate's grammar.
 */
int runSweep(const std::vector<std::string> &args, std::ostream &out,
             std::ostream &err);

/**
 * Run `ahq trace <file.jsonl>`: summarise a trace produced with
 * --trace / AHQ_TRACE — epoch counts and E_S timeline per scenario,
 * scheduler decision totals (moves, rollbacks, bans), per-app ReT
 * summary (implemented in trace_cmd.cc).
 */
int runTrace(const std::vector<std::string> &args, std::ostream &out,
             std::ostream &err);

/**
 * Run `ahq timeline [--series=LIST] [--scenario=TAG]
 * [--format=text|csv|json] [--width=N] <file.jsonl>`: render the
 * `series` events of a trace as aligned text sparklines (default),
 * CSV rows or JSON — per-(scenario, series) bucket timelines with
 * fault / recovery / violation markers, enough to reproduce the
 * paper's Fig. 13 entropy timeline from any run, sweep or chaos
 * invocation (implemented in timeline_cmd.cc).
 */
int runTimeline(const std::vector<std::string> &args,
                std::ostream &out, std::ostream &err);

/**
 * Run `ahq why [--scenario=TAG] [--app=NAME] [--top=N]
 * [--format=text|csv|json] <file.jsonl>`: fold the `attribution`
 * events of a --trace --attribute run into the per-(victim,
 * culprit, resource) blame table — "who is hurting my LC app, and
 * through which resource" — sorted by attributed interference
 * share (implemented in why_cmd.cc). Exits 1 on malformed input or
 * when the trace carries no attribution events.
 */
int runWhy(const std::vector<std::string> &args, std::ostream &out,
           std::ostream &err);

/**
 * Run `ahq alerts [--scenario=TAG] [--app=NAME]
 * [--format=text|csv|json] <file.jsonl>`: list the `alert_raise` /
 * `alert_clear` events of a --trace --slo run as a timeline plus
 * per-(scenario, app) totals — raises, clears, alerts still active
 * at the end of the run (implemented in alerts_cmd.cc). Exits 1 on
 * malformed input or when the trace carries no alert events.
 */
int runAlerts(const std::vector<std::string> &args,
              std::ostream &out, std::ostream &err);

/**
 * Run `ahq profile <file.jsonl>`: aggregate the `span` events of a
 * profiled trace into a flame-style indented tree per scenario —
 * count, total/mean/p99 wall time (when the trace carries timing)
 * and each span's share of its parent (implemented in
 * profile_cmd.cc). Exits 1 with a line-numbered error and no
 * partial table on malformed input.
 */
int runProfile(const std::vector<std::string> &args,
               std::ostream &out, std::ostream &err);

/**
 * Print a live profiler's aggregates as the same indented span
 * tree `ahq profile` renders — the --profile console output of
 * simulate/sweep/chaos (implemented in profile_cmd.cc).
 *
 * @param wall_times Include total/mean/p99/max columns and the
 *        %-of-parent share (they vary run to run; counts do not).
 */
void printSpanProfile(std::ostream &out,
                      const obs::SpanProfiler &prof,
                      bool wall_times);

/**
 * Print a blame ledger as a text table, largest attributed share
 * first (ties broken by ledger key order, so the output is
 * deterministic) — the console rendering simulate/fleet use for
 * --attribute and `ahq why` uses for its text format.
 *
 * @param top Keep only the `top` largest rows; 0 = all.
 */
void printBlameTable(std::ostream &out,
                     const obs::AttributionLedger &ledger,
                     std::size_t top);

/** Print one run's alert accounting (the --slo console line). */
void printSloSummary(std::ostream &out, const obs::SloSummary &slo);

/**
 * Run `ahq report [--format=json|md] [-o FILE] <input>...`: fold
 * traces and BENCH_*.json files from one or more runs into a single
 * JSON or Markdown summary (implemented in report_cmd.cc).
 */
int runReport(const std::vector<std::string> &args,
              std::ostream &out, std::ostream &err);

/**
 * Run `ahq bench-diff [--threshold=T] [--baseline <old.json>]
 * <old.json> <new.json>`: compare two BENCH_*.json perf-trajectory
 * files by benchmark name, print the per-benchmark speedup ratio
 * (new/old throughput, or old/new wall time when a row has no
 * throughput; geometric mean in the footer) and flag regressions
 * beyond the threshold (default 10%). With --baseline only the new
 * file is passed positionally — the CI shape, where the old file
 * is a committed baseline. Exit 0 when clean, 1 when a regression
 * is flagged, 2 on usage or parse errors (implemented in
 * report_cmd.cc; also built standalone as tools/bench_diff).
 */
int runBenchDiff(const std::vector<std::string> &args,
                 std::ostream &out, std::ostream &err);

/** Run `ahq apps`. */
int runApps(std::ostream &out);

/**
 * Run `ahq checks`: list the registered invariant checks (name,
 * paper reference, summary) that AHQ_CHECK / --check enables.
 */
int runChecks(std::ostream &out);

/** Run `ahq strategies`. */
int runStrategies(std::ostream &out);

/** Top-level dispatch; argv excludes the program name. */
int dispatch(const std::vector<std::string> &argv, std::ostream &out,
             std::ostream &err);

} // namespace ahq::cli

#endif // AHQ_TOOLS_CLI_HH

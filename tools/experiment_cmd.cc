/**
 * @file
 * `ahq experiment`: online two-arm policy experiments on a live
 * fleet — design the assignment, run it through the policy-swap
 * seam, and estimate the scheduler contrast with naive /
 * Differences-in-Q / mixed estimators and bootstrap CIs.
 *
 * Verbs:
 *   design   print the randomized (node x block) arm assignment
 *   run      run the experiment and print blocks + estimates
 *   analyze  re-estimate from a run's trace (experiment_block
 *            events), e.g. at a different confidence level
 *   verdict  one-line verdict from a run's trace
 */

#include "cli.hh"

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/jobs.hh"
#include "experiment/harness.hh"
#include "fault/plan.hh"
#include "obs/metrics.hh"
#include "obs/trace_reader.hh"
#include "obs/trace_sink.hh"
#include "report/table.hh"
#include "sched/registry.hh"

namespace ahq::cli
{

namespace
{

long long
expInt(const std::string &s, const std::string &flag,
       long long min_v)
{
    long long v = 0;
    try {
        std::size_t used = 0;
        v = std::stoll(s, &used);
        if (used != s.size())
            throw std::invalid_argument("trailing characters");
    } catch (const std::exception &) {
        throw std::invalid_argument("bad " + flag + ": '" + s +
                                    "' (expected an integer)");
    }
    if (v < min_v) {
        throw std::invalid_argument(
            flag + " must be >= " + std::to_string(min_v) +
            " (got " + s + ")");
    }
    return v;
}

double
expDouble(const std::string &s, const std::string &flag)
{
    try {
        std::size_t used = 0;
        const double v = std::stod(s, &used);
        if (used != s.size())
            throw std::invalid_argument("trailing characters");
        return v;
    } catch (const std::exception &) {
        throw std::invalid_argument(
            "bad " + flag + ": '" + s +
            "' (expected a number)");
    }
}

/** Experiment-only flags, peeled off before parseSimulateArgs. */
struct ExpFlags
{
    experiment::ExperimentDesign design;
    experiment::EstimatorConfig estimator;
    int lcPerNode = 2;
    int bePerNode = 1;
    int tenants = 64;
    double zipfSkew = 1.1;
};

/**
 * Peel experiment flags; everything else lands in `rest` for
 * parseSimulateArgs (seed, jobs, trace, machine, faults, ...).
 */
ExpFlags
peelFlags(const std::vector<std::string> &args,
          std::vector<std::string> &rest)
{
    ExpFlags f;
    for (std::size_t i = 0; i < args.size(); ++i) {
        std::string a = args[i];
        std::string inline_value;
        bool has_inline = false;
        if (a.rfind("--", 0) == 0) {
            const auto eq = a.find('=');
            if (eq != std::string::npos) {
                inline_value = a.substr(eq + 1);
                a = a.substr(0, eq);
                has_inline = true;
            }
        }
        auto next = [&](const char *flag) -> std::string {
            if (has_inline)
                return inline_value;
            if (i + 1 >= args.size()) {
                throw std::invalid_argument(
                    std::string(flag) + " needs a value");
            }
            return args[++i];
        };
        if (a == "--design") {
            f.design.kind = experiment::designKindFromName(
                next("--design"));
        } else if (a == "--arm-a") {
            f.design.armA = next("--arm-a");
        } else if (a == "--arm-b") {
            f.design.armB = next("--arm-b");
        } else if (a == "--nodes") {
            f.design.numNodes = static_cast<int>(
                expInt(next("--nodes"), "--nodes", 1));
        } else if (a == "--blocks") {
            f.design.blocksPerNode = static_cast<int>(
                expInt(next("--blocks"), "--blocks", 2));
        } else if (a == "--block-epochs") {
            f.design.blockEpochs = static_cast<int>(expInt(
                next("--block-epochs"), "--block-epochs", 1));
        } else if (a == "--resamples") {
            f.estimator.resamples = static_cast<int>(expInt(
                next("--resamples"), "--resamples", 1));
        } else if (a == "--confidence") {
            f.estimator.confidence =
                expDouble(next("--confidence"), "--confidence");
            if (f.estimator.confidence <= 0.0 ||
                f.estimator.confidence >= 1.0) {
                throw std::invalid_argument(
                    "--confidence must be in (0, 1)");
            }
        } else if (a == "--lc") {
            f.lcPerNode = static_cast<int>(
                expInt(next("--lc"), "--lc", 1));
        } else if (a == "--be") {
            f.bePerNode = static_cast<int>(
                expInt(next("--be"), "--be", 0));
        } else if (a == "--tenants") {
            f.tenants = static_cast<int>(
                expInt(next("--tenants"), "--tenants", 1));
        } else if (a == "--zipf") {
            f.zipfSkew = expDouble(next("--zipf"), "--zipf");
        } else {
            rest.push_back(args[i]);
        }
    }
    return f;
}

std::string
ciCell(const stats::ConfidenceInterval &ci)
{
    return report::TextTable::num(ci.estimate) + " [" +
        report::TextTable::num(ci.lo) + ", " +
        report::TextTable::num(ci.hi) + "]";
}

void
printEstimates(std::ostream &out,
               const experiment::ExperimentEstimates &est,
               experiment::Verdict verdict)
{
    report::TextTable t({"metric", "naive", "dq", "mixed",
                         "alpha"});
    const auto row = [&](const char *name,
                         const experiment::MetricEstimate &m) {
        t.addRow({name, ciCell(m.naive), ciCell(m.dq),
                  ciCell(m.mixed),
                  report::TextTable::num(m.alpha, 2)});
    };
    row("dE_S", est.es);
    row("dp95_ms", est.p95Ms);
    row("dviol_rate", est.violations);
    t.print(out);
    out << "blocks: " << est.blocksA << " A / " << est.blocksB
        << " B\n";
    out << "verdict: " << experiment::verdictName(verdict)
        << " (mixed dE_S CI "
        << (verdict == experiment::Verdict::Inconclusive
                ? "straddles zero"
                : "excludes zero")
        << ")\n";
}

/** Rebuild BlockStats from a trace's experiment_block events. */
std::vector<experiment::BlockStat>
blocksFromTrace(const std::string &path)
{
    std::vector<experiment::BlockStat> blocks;
    obs::forEachTraceFile(path, [&](const obs::TraceEvent &ev,
                                    int) {
        if (ev.type() != "experiment_block")
            return;
        experiment::BlockStat s;
        s.node = static_cast<int>(ev.num("node"));
        s.block = static_cast<int>(ev.num("block"));
        s.arm = static_cast<int>(ev.num("arm"));
        s.epochs = static_cast<int>(ev.num("epochs"));
        s.meanES = ev.num("mean_es");
        s.meanP95Ms = ev.num("mean_p95_ms");
        s.meanQueue = ev.num("mean_queue");
        s.meanArrivalRate = ev.num("mean_arrival");
        s.startQueue = ev.num("start_queue");
        s.violRate = ev.num("viol_rate");
        blocks.push_back(s);
    });
    return blocks;
}

int
runDesignVerb(const ExpFlags &f, std::ostream &out)
{
    experiment::validateDesign(f.design);
    const auto &d = f.design;
    out << "design: " << experiment::designKindName(d.kind)
        << ", A=" << d.armA << " B=" << d.armB << ", "
        << d.numNodes << " nodes x " << d.blocksPerNode
        << " blocks x " << d.blockEpochs << " epochs, seed "
        << d.seed << "\n";
    report::TextTable t({"node", "blocks (A=0 B=1)"});
    for (int n = 0; n < d.numNodes; ++n) {
        const auto arms = experiment::nodeBlockArms(d, n);
        std::string cells;
        for (const auto a : arms) {
            if (!cells.empty())
                cells += ' ';
            cells += a == 0 ? 'A' : 'B';
        }
        t.addRow({std::to_string(n), cells});
    }
    t.print(out);
    return 0;
}

int
runRunVerb(const ExpFlags &flags, const SimulateOptions &opt,
           std::ostream &out)
{
    experiment::ExperimentRunConfig cfg;
    cfg.design = flags.design;
    cfg.design.seed = opt.seed;
    cfg.estimator = flags.estimator;
    cfg.estimator.seed = opt.seed;
    cfg.load.lcPerNode = flags.lcPerNode;
    cfg.load.bePerNode = flags.bePerNode;
    cfg.load.numTenants = flags.tenants;
    cfg.load.zipfSkew = flags.zipfSkew;
    cfg.load.seed = opt.seed;
    cfg.machine = machine::MachineConfig::xeonE52630v4()
                      .withAvailable(opt.cores, opt.ways,
                                     opt.bwUnits);
    cfg.base.seed = opt.seed;
    cfg.base.tailPercentile = opt.percentile;
    cfg.base.ri = opt.ri;
    cfg.base.checkMode = opt.checkMode;
    cfg.base.traceSampleRate = opt.traceSampleRate;

    // Chaos-composed experiments: the same JSONL fault plans chaos
    // runs accept are injected into every node of the experiment
    // fleet (the plan outlives the run; it lives on this frame).
    fault::FaultPlan plan;
    if (!opt.faultsPath.empty()) {
        plan = fault::FaultPlan::fromFile(opt.faultsPath);
        cfg.base.faults = &plan;
    }

    std::unique_ptr<obs::FileTraceSink> sink;
    obs::MetricsRegistry metrics;
    if (!opt.tracePath.empty()) {
        sink =
            std::make_unique<obs::FileTraceSink>(opt.tracePath);
        cfg.base.obs.sink = sink.get();
        cfg.base.obs.scenario = "exp";
    }
    if (opt.dumpMetrics || sink)
        cfg.base.obs.metrics = &metrics;

    const auto res = experiment::runExperiment(cfg);

    out << "experiment: "
        << experiment::designKindName(res.design.kind) << ", A="
        << res.design.armA << " B=" << res.design.armB << ", "
        << res.design.numNodes << " nodes x "
        << res.design.blocksPerNode << " blocks x "
        << res.design.blockEpochs << " epochs, "
        << res.policySwaps << " policy swaps\n";
    printEstimates(out, res.estimates, res.verdict);

    if (sink) {
        sink->flush();
        out << "trace written to " << sink->path() << "\n";
    }
    if (opt.dumpMetrics)
        metrics.print(out);
    return 0;
}

} // namespace

int
runExperiment(const std::vector<std::string> &args,
              std::ostream &out, std::ostream &err)
{
    if (args.empty()) {
        err << "usage: ahq experiment "
               "design|run|analyze|verdict [options]\n";
        return 2;
    }
    const std::string verb = args[0];
    const std::vector<std::string> tail(args.begin() + 1,
                                        args.end());

    if (verb == "analyze" || verb == "verdict") {
        // Trace-driven verbs: flags + one positional trace path.
        std::vector<std::string> rest;
        ExpFlags flags;
        std::string path;
        try {
            flags = peelFlags(tail, rest);
            for (const auto &a : rest) {
                if (a.rfind("--", 0) == 0) {
                    throw std::invalid_argument(
                        "unknown flag for " + verb + ": " + a);
                }
                if (!path.empty()) {
                    throw std::invalid_argument(
                        "exactly one trace file expected");
                }
                path = a;
            }
            if (path.empty())
                throw std::invalid_argument(
                    "trace file required");
            const auto blocks = blocksFromTrace(path);
            if (blocks.empty()) {
                err << "error: no experiment_block events in "
                    << path << "\n";
                return 1;
            }
            const auto est = experiment::estimate(
                blocks, flags.estimator);
            const auto verdict = experiment::verdictOf(est);
            if (verb == "verdict") {
                out << experiment::verdictName(verdict) << "\n";
            } else {
                printEstimates(out, est, verdict);
            }
            return 0;
        } catch (const std::exception &e) {
            err << "error: " << e.what() << "\n";
            return 2;
        }
    }

    if (verb != "design" && verb != "run") {
        err << "unknown experiment verb: " << verb << "\n";
        return 2;
    }

    std::vector<std::string> rest;
    ExpFlags flags;
    SimulateOptions opt;
    try {
        flags = peelFlags(tail, rest);
        opt = parseSimulateArgs(rest, /*require_apps=*/false);
        if (!opt.lcApps.empty() || !opt.beApps.empty()) {
            throw std::invalid_argument(
                "experiment synthesizes its workload from the "
                "global load generator; app specs are not "
                "accepted (shape it with --lc/--be/--tenants)");
        }
        // The arms must exist before any simulation starts.
        sched::makeScheduler(flags.design.armA);
        sched::makeScheduler(flags.design.armB);
        flags.design.seed = opt.seed;
        experiment::validateDesign(flags.design);
    } catch (const std::exception &e) {
        err << "error: " << e.what() << "\n";
        return 2;
    }

    try {
        if (opt.jobs > 0)
            exec::setDefaultJobs(opt.jobs);
        if (verb == "design")
            return runDesignVerb(flags, out);
        return runRunVerb(flags, opt, out);
    } catch (const std::exception &e) {
        err << "error: " << e.what() << "\n";
        return 1;
    }
}

} // namespace ahq::cli

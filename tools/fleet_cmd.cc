/**
 * @file
 * `ahq fleet`: simulate a datacenter-scale fleet under the global
 * load generator — N nodes x M tenants with diurnal curves, Zipf
 * tenant skew and flash crowds — through the streaming fleet
 * aggregation, optionally with the entropy-driven cluster scheduler
 * rebalancing between rounds.
 */

#include "cli.hh"

#include <chrono>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "cluster/cluster_sched.hh"
#include "exec/jobs.hh"
#include "obs/metrics.hh"
#include "obs/timeseries.hh"
#include "obs/trace_sink.hh"
#include "report/table.hh"
#include "sched/registry.hh"
#include "trace/fleet_load.hh"

namespace ahq::cli
{

namespace
{

long long
fleetInt(const std::string &s, const std::string &flag,
         long long min_v)
{
    long long v = 0;
    try {
        std::size_t used = 0;
        v = std::stoll(s, &used);
        if (used != s.size())
            throw std::invalid_argument("trailing characters");
    } catch (const std::exception &) {
        throw std::invalid_argument("bad " + flag + ": '" + s +
                                    "' (expected an integer)");
    }
    if (v < min_v) {
        throw std::invalid_argument(
            flag + " must be >= " + std::to_string(min_v) +
            " (got " + s + ")");
    }
    return v;
}

double
fleetDouble(const std::string &s, const std::string &flag)
{
    try {
        std::size_t used = 0;
        const double v = std::stod(s, &used);
        if (used != s.size())
            throw std::invalid_argument("trailing characters");
        if (!std::isfinite(v))
            throw std::invalid_argument("not finite");
        return v;
    } catch (const std::exception &) {
        throw std::invalid_argument(
            "bad " + flag + ": '" + s +
            "' (expected a finite number)");
    }
}

/** Fleet-only flags, peeled off before parseSimulateArgs. */
struct FleetFlags
{
    int nodes = 8;
    int lcPerNode = 2;
    int bePerNode = 1;
    int tenants = 64;
    double zipfSkew = 1.1;

    /** Rebalance round length in epochs; 0 = plain Fleet::run. */
    int rebalanceEvery = 0;

    double spreadThreshold = 0.10;

    /** Retain per-epoch records (costs O(nodes x epochs) memory). */
    bool keepEpochs = false;
};

} // namespace

int
runFleet(const std::vector<std::string> &args, std::ostream &out,
         std::ostream &err)
{
    FleetFlags ff;
    // Fleet defaults are deliberately lighter than simulate's (a
    // fleet multiplies everything by N nodes); an explicit
    // --duration / --warmup later in the list overrides these.
    std::vector<std::string> rest{"--duration", "30", "--warmup",
                                  "10"};
    try {
        for (std::size_t i = 0; i < args.size(); ++i) {
            std::string a = args[i];
            std::string inline_value;
            bool has_inline = false;
            if (a.rfind("--", 0) == 0) {
                const auto eq = a.find('=');
                if (eq != std::string::npos) {
                    inline_value = a.substr(eq + 1);
                    a = a.substr(0, eq);
                    has_inline = true;
                }
            }
            auto next = [&](const char *flag) -> std::string {
                if (has_inline)
                    return inline_value;
                if (i + 1 >= args.size()) {
                    throw std::invalid_argument(
                        std::string(flag) + " needs a value");
                }
                return args[++i];
            };
            if (a == "--nodes") {
                ff.nodes = static_cast<int>(
                    fleetInt(next("--nodes"), "--nodes", 1));
            } else if (a == "--lc") {
                ff.lcPerNode = static_cast<int>(
                    fleetInt(next("--lc"), "--lc", 1));
            } else if (a == "--be") {
                ff.bePerNode = static_cast<int>(
                    fleetInt(next("--be"), "--be", 0));
            } else if (a == "--tenants") {
                ff.tenants = static_cast<int>(
                    fleetInt(next("--tenants"), "--tenants", 1));
            } else if (a == "--zipf") {
                ff.zipfSkew = fleetDouble(next("--zipf"), "--zipf");
                if (ff.zipfSkew < 0.0) {
                    throw std::invalid_argument(
                        "--zipf must be >= 0 (got " +
                        std::to_string(ff.zipfSkew) + ")");
                }
            } else if (a == "--rebalance-every") {
                ff.rebalanceEvery = static_cast<int>(
                    fleetInt(next("--rebalance-every"),
                             "--rebalance-every", 0));
            } else if (a == "--spread") {
                ff.spreadThreshold =
                    fleetDouble(next("--spread"), "--spread");
                if (ff.spreadThreshold < 0.0) {
                    throw std::invalid_argument(
                        "--spread must be >= 0 (got " +
                        std::to_string(ff.spreadThreshold) + ")");
                }
            } else if (a == "--keep-epochs") {
                if (has_inline) {
                    throw std::invalid_argument(
                        "--keep-epochs does not take a value");
                }
                ff.keepEpochs = true;
            } else {
                rest.push_back(args[i]);
            }
        }
    } catch (const std::exception &e) {
        err << "error: " << e.what() << "\n";
        return 2;
    }

    SimulateOptions opt;
    try {
        opt = parseSimulateArgs(rest, /*require_apps=*/false);
        if (!opt.lcApps.empty() || !opt.beApps.empty()) {
            throw std::invalid_argument(
                "fleet synthesizes its workload from the global "
                "load generator; app specs are not accepted "
                "(shape it with --nodes/--lc/--be/--tenants)");
        }
    } catch (const std::exception &e) {
        err << "error: " << e.what() << "\n";
        return 2;
    }

    try {
        if (opt.jobs > 0)
            exec::setDefaultJobs(opt.jobs);
        trace::FleetLoadConfig lc;
        lc.numNodes = ff.nodes;
        lc.lcPerNode = ff.lcPerNode;
        lc.bePerNode = ff.bePerNode;
        lc.numTenants = ff.tenants;
        lc.zipfSkew = ff.zipfSkew;
        lc.seed = opt.seed;
        const trace::FleetLoadGenerator gen(lc);

        const auto mc = machine::MachineConfig::xeonE52630v4()
                            .withAvailable(opt.cores, opt.ways,
                                           opt.bwUnits);

        cluster::SimulationConfig cfg;
        cfg.durationSeconds = opt.durationSeconds;
        cfg.warmupEpochs = opt.warmupEpochs;
        cfg.seed = opt.seed;
        cfg.tailPercentile = opt.percentile;
        cfg.ri = opt.ri;
        cfg.checkMode = opt.checkMode;
        cfg.traceSampleRate = opt.traceSampleRate;
        cfg.keepEpochs = ff.keepEpochs;
        cfg.attribute = opt.attribute;
        cfg.slo = opt.slo;

        std::unique_ptr<obs::FileTraceSink> sink;
        obs::MetricsRegistry metrics;
        obs::TimeSeriesRegistry tseries;
        if (!opt.tracePath.empty()) {
            sink = std::make_unique<obs::FileTraceSink>(
                opt.tracePath);
            cfg.obs.sink = sink.get();
            cfg.obs.scenario = opt.strategy;
            cfg.obs.series = &tseries;
        }
        if (opt.dumpMetrics || sink)
            cfg.obs.metrics = &metrics;

        // Peak offered demand: every LC slot's tenant at its
        // daytime peak, in the app's own QPS units.
        double peak_qps = 0.0;
        for (int n = 0; n < ff.nodes; ++n) {
            const auto apps = cluster::fleetNodeApps(gen, n);
            for (int s = 0; s < ff.lcPerNode; ++s) {
                const auto rank = gen.tenant(n, s);
                peak_qps += gen.tenantPeakLoad(rank) *
                    apps[static_cast<std::size_t>(s)]
                        .profile.maxLoadQps;
            }
        }

        out << "fleet: " << ff.nodes << " nodes x ("
            << ff.lcPerNode << " LC + " << ff.bePerNode
            << " BE), " << ff.tenants << " tenants (zipf "
            << ff.zipfSkew << "), strategy " << opt.strategy
            << "\n";
        out << "peak demand ~ "
            << static_cast<long long>(std::llround(peak_qps))
            << " QPS (~"
            << static_cast<long long>(
                   std::llround(peak_qps * 60.0))
            << " users at 1 req/user/min)\n";

        const int total_epochs = static_cast<int>(std::round(
            cfg.durationSeconds / cfg.epochSeconds));
        const auto t0 = std::chrono::steady_clock::now();

        double e_lc = 0.0, e_be = 0.0, e_s = 0.0, yield = 1.0;
        long long violations = 0, migrations = 0;
        obs::AttributionLedger blame;
        obs::SloSummary slo_totals;
        if (ff.rebalanceEvery > 0) {
            cluster::ClusterConfig cc;
            cc.roundEpochs = ff.rebalanceEvery;
            cc.rounds =
                std::max(1, total_epochs / ff.rebalanceEvery);
            cc.roundWarmupEpochs = std::min(
                cfg.warmupEpochs, cc.roundEpochs - 1);
            cc.spreadThreshold = ff.spreadThreshold;
            cluster::ClusterScheduler cs(cc, opt.strategy);
            for (int n = 0; n < ff.nodes; ++n)
                cs.addNode(mc, cluster::fleetNodeApps(gen, n));
            const auto res = cs.run(cfg);
            report::TextTable t(
                {"round", "E_S", "spread", "migrations"});
            for (std::size_t r = 0; r < res.roundES.size(); ++r) {
                long long moved = 0;
                for (const auto &m : res.migrations) {
                    if (m.round == static_cast<int>(r))
                        ++moved;
                }
                t.addRow({std::to_string(r),
                          report::TextTable::num(res.roundES[r]),
                          report::TextTable::num(
                              res.roundSpread[r]),
                          std::to_string(moved)});
            }
            t.print(out);
            for (const auto &m : res.migrations) {
                out << "migrated " << m.app << ": node"
                    << m.fromNode << " -> node" << m.toNode
                    << " (round " << m.round << ")\n";
            }
            e_lc = res.eLc;
            e_be = res.eBe;
            e_s = res.eS;
            yield = res.yieldValue;
            violations = res.violations;
            migrations =
                static_cast<long long>(res.migrations.size());
            blame = res.attribution;
            slo_totals = res.slo;
        } else {
            cluster::Fleet fleet;
            for (int n = 0; n < ff.nodes; ++n) {
                fleet.addNode(
                    cluster::Node(mc,
                                  cluster::fleetNodeApps(gen, n)),
                    sched::makeScheduler(opt.strategy));
            }
            const auto res = fleet.run(cfg);
            e_lc = res.eLc;
            e_be = res.eBe;
            e_s = res.eS;
            yield = res.yieldValue;
            violations = res.violations;
            blame = res.attribution;
            slo_totals = res.slo;
        }

        if (opt.attribute && !blame.empty()) {
            out << "fleet blame ledger (top 12 by attributed "
                   "interference):\n";
            printBlameTable(out, blame, 12);
        }
        if (opt.slo)
            printSloSummary(out, slo_totals);

        const double wall_s =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        out << "E_LC = " << e_lc << ", E_BE = " << e_be
            << ", E_S = " << e_s << ", yield = " << yield
            << ", violations = " << violations;
        if (ff.rebalanceEvery > 0)
            out << ", migrations = " << migrations;
        out << "\n";
        out << "wall " << report::TextTable::num(wall_s, 2)
            << " s, "
            << report::TextTable::num(
                   wall_s > 0.0 ? ff.nodes / wall_s : 0.0, 1)
            << " nodes/s\n";

        if (sink) {
            tseries.flush(cfg.obs);
            sink->flush();
            out << "trace written to " << sink->path() << "\n";
        }
        if (opt.dumpMetrics)
            metrics.print(out);
        return 0;
    } catch (const std::exception &e) {
        err << "error: " << e.what() << "\n";
        return 1;
    }
}

} // namespace ahq::cli

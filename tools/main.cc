/**
 * @file
 * Entry point of the `ahq` command-line tool.
 */

#include <iostream>
#include <string>
#include <vector>

#include "cli.hh"

int
main(int argc, char **argv)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i)
        args.emplace_back(argv[i]);
    return ahq::cli::dispatch(args, std::cout, std::cerr);
}

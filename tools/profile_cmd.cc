/**
 * @file
 * `ahq profile` — aggregate the `span` events of a profiled trace
 * (--profile --trace) into a flame-style indented tree per
 * scenario, plus the shared tree renderer that simulate / sweep /
 * chaos --profile use for their console summary.
 */

#include "cli.hh"

#include <algorithm>
#include <cstdint>
#include <map>
#include <stdexcept>

#include "obs/scope.hh"
#include "obs/span.hh"
#include "obs/trace_reader.hh"
#include "report/table.hh"

namespace ahq::cli
{

namespace
{

/** One span path's aggregates, from either source (live profiler
 *  snapshot or `span` trace events). */
struct SpanRow
{
    std::uint64_t count = 0;
    double totalMs = 0.0;
    double maxMs = 0.0;
    double p99Ms = 0.0;
};

/** Depth of a path = number of '/' separators. */
int
pathDepth(const std::string &path)
{
    return static_cast<int>(
        std::count(path.begin(), path.end(), '/'));
}

/**
 * Render one path-keyed row set as an indented tree. std::map's
 * lexicographic order is a depth-first pre-order for '/'-joined
 * paths (every letter sorts above '/'), so children always follow
 * their parent directly.
 */
void
printTree(std::ostream &out,
          const std::map<std::string, SpanRow> &rows,
          bool wall_times)
{
    std::vector<std::string> headers{"span", "count"};
    if (wall_times) {
        headers.insert(headers.end(),
                       {"total (ms)", "mean (ms)", "p99 (ms)",
                        "max (ms)", "% parent"});
    }
    report::TextTable t(std::move(headers));
    for (const auto &[path, row] : rows) {
        const auto slash = path.rfind('/');
        const std::string name = slash == std::string::npos
                                     ? path
                                     : path.substr(slash + 1);
        std::string label(
            static_cast<std::size_t>(2 * pathDepth(path)), ' ');
        label += name;
        std::vector<std::string> cells{
            label, std::to_string(row.count)};
        if (wall_times) {
            cells.push_back(report::TextTable::num(row.totalMs));
            cells.push_back(report::TextTable::num(
                row.count > 0 ? row.totalMs / row.count : 0.0));
            cells.push_back(report::TextTable::num(row.p99Ms));
            cells.push_back(report::TextTable::num(row.maxMs));
            std::string share = "-";
            if (slash != std::string::npos) {
                const auto parent =
                    rows.find(path.substr(0, slash));
                if (parent != rows.end() &&
                    parent->second.totalMs > 0.0) {
                    share = report::TextTable::num(
                        100.0 * row.totalMs /
                            parent->second.totalMs,
                        1);
                }
            }
            cells.push_back(share);
        }
        t.addRow(std::move(cells));
    }
    t.print(out);
}

} // namespace

void
printSpanProfile(std::ostream &out, const obs::SpanProfiler &prof,
                 bool wall_times)
{
    std::map<std::string, SpanRow> rows;
    for (const auto &[path, st] : prof.snapshot()) {
        SpanRow row;
        row.count = st.count;
        row.totalMs = static_cast<double>(st.totalNs) / 1e6;
        row.maxMs = static_cast<double>(st.maxNs) / 1e6;
        row.p99Ms =
            static_cast<double>(st.quantileNs(0.99)) / 1e6;
        rows.emplace(path, row);
    }
    printTree(out, rows, wall_times);
}

int
runProfile(const std::vector<std::string> &args, std::ostream &out,
           std::ostream &err)
{
    if (args.size() != 1) {
        err << "usage: ahq profile <file.jsonl>\n";
        return 2;
    }

    // Everything is aggregated before a single byte is printed, so
    // a malformed line can never leave a partial table behind.
    std::vector<std::string> order; // scenarios, first-seen
    std::map<std::string, std::map<std::string, SpanRow>> scen;
    std::map<std::string, bool> timed;
    long long span_events = 0;
    try {
        obs::forEachTraceFile(
            args[0],
            [&](const obs::TraceEvent &ev, int) {
                const int v = static_cast<int>(ev.num("v", -1.0));
                if (v != obs::kSchemaVersion) {
                    throw std::runtime_error(
                        "unsupported schema version " +
                        std::to_string(v) +
                        " (this build reads v" +
                        std::to_string(obs::kSchemaVersion) + ")");
                }
                if (ev.type() != "span")
                    return;
                ++span_events;
                const std::string tag = ev.str("scenario");
                if (scen.find(tag) == scen.end())
                    order.push_back(tag);
                auto &row = scen[tag][ev.str("path")];
                row.count +=
                    static_cast<std::uint64_t>(ev.num("count"));
                if (ev.has("total_ms")) {
                    timed[tag] = true;
                    row.totalMs += ev.num("total_ms");
                    row.maxMs =
                        std::max(row.maxMs, ev.num("max_ms"));
                    // Merged events lose exact quantiles; the max
                    // of the per-flush p99s is a sound upper bound.
                    row.p99Ms =
                        std::max(row.p99Ms, ev.num("p99_ms"));
                }
            });
    } catch (const std::exception &e) {
        err << "error: " << e.what() << "\n";
        return 1;
    }
    if (span_events == 0) {
        err << "error: " << args[0]
            << ": no span events (produce one with "
               "--profile --trace)\n";
        return 1;
    }

    out << args[0] << ": " << span_events << " span event(s), "
        << scen.size() << " scenario(s)\n";
    for (const auto &tag : order) {
        out << "scenario "
            << (tag.empty() ? "(untagged)" : tag) << ":\n";
        printTree(out, scen[tag], timed[tag]);
    }
    return 0;
}

} // namespace ahq::cli

/**
 * @file
 * `ahq report` — fold decision traces and BENCH_*.json
 * perf-trajectory files from one or more runs into a single JSON
 * or Markdown summary — and `ahq bench-diff`, the regression gate
 * comparing two BENCH_*.json files (also built standalone as
 * tools/bench_diff).
 */

#include "cli.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <map>
#include <stdexcept>
#include <vector>

#include "obs/json.hh"
#include "obs/trace_reader.hh"
#include "report/table.hh"

namespace ahq::cli
{

namespace
{

/** Aggregates for one scenario within one trace file. */
struct RunSummary
{
    std::string file;
    std::string scenario;
    std::string scheduler;
    long long epochs = 0;
    double sumEs = 0.0;
    double finalEs = 0.0;
    long long decisions = 0;
    long long spans = 0;
    long long faults = 0;

    /**
     * Folded E_S summary from the run's `series` event (the
     * TimeSeriesRegistry flush), when the trace carries one. p99
     * is the count-weighted 99th percentile of per-bucket maxima
     * — an upper estimate that survives downsampling, since
     * folding preserves maxima exactly.
     */
    bool hasSeries = false;
    double esMin = 0.0;
    double esMax = 0.0;
    double esP99 = 0.0;

    /** SLO alert accounting from alert_raise / alert_clear. */
    long long alertRaises = 0;
    long long alertClears = 0;

    /** Worst fast-window burn rate seen at any transition. */
    double worstBurn = 0.0;
};

/** One experiment_end event (an `ahq experiment run` outcome). */
struct ExperimentEntry
{
    std::string file;
    std::string scenario;
    std::string verdict;
    long long blocksA = 0;
    long long blocksB = 0;
    long long policySwaps = 0;
    double esMixedEst = 0.0;
    double esMixedLo = 0.0;
    double esMixedHi = 0.0;
    double p95MixedEst = 0.0;
    double violMixedEst = 0.0;
};

/** One BENCH_*.json line. */
struct BenchEntry
{
    std::string file;
    std::string benchmark;
    double wallMs = 0.0;
    double throughput = 0.0;
    std::string unit;
    std::string config;
    std::string gitRev;
};

bool
isDecisionType(const std::string &type)
{
    return type.size() > 9 &&
        type.compare(type.size() - 9, 9, "_decision") == 0;
}

/** Fold an `e_s` series event's buckets into the run summary. */
void
foldEsSeries(RunSummary &s, const obs::TraceEvent &ev)
{
    const auto n = ev.nums("n");
    const auto mins = ev.nums("min");
    const auto maxs = ev.nums("max");
    const std::size_t len =
        std::min({n.size(), mins.size(), maxs.size()});
    std::vector<std::pair<double, std::uint64_t>> maxima;
    std::uint64_t total = 0;
    bool any = false;
    for (std::size_t i = 0; i < len; ++i) {
        if (n[i] <= 0)
            continue; // empty bucket (rendered as zeros)
        const auto cnt = static_cast<std::uint64_t>(n[i]);
        if (!any) {
            s.esMin = mins[i];
            s.esMax = maxs[i];
            any = true;
        } else {
            s.esMin = std::min(s.esMin, mins[i]);
            s.esMax = std::max(s.esMax, maxs[i]);
        }
        maxima.emplace_back(maxs[i], cnt);
        total += cnt;
    }
    if (!any)
        return;
    s.hasSeries = true;
    std::sort(maxima.begin(), maxima.end());
    const double target = 0.99 * static_cast<double>(total);
    std::uint64_t seen = 0;
    s.esP99 = maxima.back().first;
    for (const auto &[mx, cnt] : maxima) {
        seen += cnt;
        if (static_cast<double>(seen) >= target) {
            s.esP99 = mx;
            break;
        }
    }
}

/** Scan one input file into the run / bench aggregates. */
void
scanInput(const std::string &path,
          std::vector<RunSummary> &runs,
          std::vector<BenchEntry> &bench,
          std::vector<ExperimentEntry> &experiments)
{
    // (file, scenario) -> index into runs, keeping file order.
    std::map<std::string, std::size_t> index;
    obs::forEachTraceFile(
        path, [&](const obs::TraceEvent &ev, int) {
            const std::string type = ev.type();
            if (type == "bench") {
                BenchEntry e;
                e.file = path;
                e.benchmark = ev.str("benchmark");
                e.wallMs = ev.num("wall_ms");
                e.throughput = ev.num("throughput");
                e.unit = ev.str("unit");
                e.config = ev.str("config");
                e.gitRev = ev.str("git_rev");
                bench.push_back(std::move(e));
                return;
            }
            if (type == "experiment_end") {
                ExperimentEntry e;
                e.file = path;
                e.scenario = ev.str("scenario");
                e.verdict = ev.str("verdict");
                e.blocksA =
                    static_cast<long long>(ev.num("blocks_a"));
                e.blocksB =
                    static_cast<long long>(ev.num("blocks_b"));
                e.policySwaps = static_cast<long long>(
                    ev.num("policy_swaps"));
                e.esMixedEst = ev.num("es_mixed_est");
                e.esMixedLo = ev.num("es_mixed_lo");
                e.esMixedHi = ev.num("es_mixed_hi");
                e.p95MixedEst = ev.num("p95_mixed_est");
                e.violMixedEst = ev.num("viol_mixed_est");
                experiments.push_back(std::move(e));
                return;
            }
            const std::string tag = ev.str("scenario");
            auto it = index.find(tag);
            if (it == index.end()) {
                it = index.emplace(tag, runs.size()).first;
                runs.push_back({path, tag, "", 0, 0.0, 0.0, 0,
                                0, 0});
            }
            RunSummary &s = runs[it->second];
            if (type == "run_start") {
                s.scheduler = ev.str("scheduler");
            } else if (type == "epoch") {
                ++s.epochs;
                s.finalEs = ev.num("e_s");
                s.sumEs += s.finalEs;
            } else if (type == "span") {
                s.spans +=
                    static_cast<long long>(ev.num("count"));
            } else if (type == "fault") {
                ++s.faults;
            } else if (type == "alert_raise" ||
                       type == "alert_clear") {
                if (type == "alert_raise")
                    ++s.alertRaises;
                else
                    ++s.alertClears;
                s.worstBurn = std::max(s.worstBurn,
                                       ev.num("burn_fast"));
            } else if (type == "series" &&
                       ev.str("series") == "e_s") {
                foldEsSeries(s, ev);
            } else if (isDecisionType(type)) {
                ++s.decisions;
            }
        });
}

void
emitJson(std::ostream &out, const std::vector<RunSummary> &runs,
         const std::vector<BenchEntry> &bench,
         const std::vector<ExperimentEntry> &experiments)
{
    std::string b;
    b += "{\"tool\":\"ahq report\",\"runs\":[";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const RunSummary &s = runs[i];
        if (i > 0)
            b += ',';
        b += "{\"file\":";
        obs::json::appendString(b, s.file);
        b += ",\"scenario\":";
        obs::json::appendString(b, s.scenario);
        b += ",\"scheduler\":";
        obs::json::appendString(b, s.scheduler);
        b += ",\"epochs\":";
        obs::json::appendNumber(b, s.epochs);
        b += ",\"mean_e_s\":";
        obs::json::appendNumber(
            b, s.epochs > 0 ? s.sumEs / s.epochs : 0.0);
        b += ",\"final_e_s\":";
        obs::json::appendNumber(b, s.finalEs);
        b += ",\"decisions\":";
        obs::json::appendNumber(b, s.decisions);
        if (s.hasSeries) {
            b += ",\"es_min\":";
            obs::json::appendNumber(b, s.esMin);
            b += ",\"es_max\":";
            obs::json::appendNumber(b, s.esMax);
            b += ",\"es_p99\":";
            obs::json::appendNumber(b, s.esP99);
        }
        b += ",\"spans\":";
        obs::json::appendNumber(b, s.spans);
        b += ",\"faults\":";
        obs::json::appendNumber(b, s.faults);
        b += ",\"alert_raises\":";
        obs::json::appendNumber(b, s.alertRaises);
        b += ",\"alert_clears\":";
        obs::json::appendNumber(b, s.alertClears);
        b += ",\"worst_burn\":";
        obs::json::appendNumber(b, s.worstBurn);
        b += '}';
    }
    b += "],\"experiments\":[";
    for (std::size_t i = 0; i < experiments.size(); ++i) {
        const ExperimentEntry &e = experiments[i];
        if (i > 0)
            b += ',';
        b += "{\"file\":";
        obs::json::appendString(b, e.file);
        b += ",\"scenario\":";
        obs::json::appendString(b, e.scenario);
        b += ",\"verdict\":";
        obs::json::appendString(b, e.verdict);
        b += ",\"blocks_a\":";
        obs::json::appendNumber(b, e.blocksA);
        b += ",\"blocks_b\":";
        obs::json::appendNumber(b, e.blocksB);
        b += ",\"policy_swaps\":";
        obs::json::appendNumber(b, e.policySwaps);
        b += ",\"es_mixed_est\":";
        obs::json::appendNumber(b, e.esMixedEst);
        b += ",\"es_mixed_lo\":";
        obs::json::appendNumber(b, e.esMixedLo);
        b += ",\"es_mixed_hi\":";
        obs::json::appendNumber(b, e.esMixedHi);
        b += ",\"p95_mixed_est\":";
        obs::json::appendNumber(b, e.p95MixedEst);
        b += ",\"viol_mixed_est\":";
        obs::json::appendNumber(b, e.violMixedEst);
        b += '}';
    }
    b += "],\"bench\":[";
    for (std::size_t i = 0; i < bench.size(); ++i) {
        const BenchEntry &e = bench[i];
        if (i > 0)
            b += ',';
        b += "{\"file\":";
        obs::json::appendString(b, e.file);
        b += ",\"benchmark\":";
        obs::json::appendString(b, e.benchmark);
        b += ",\"wall_ms\":";
        obs::json::appendNumber(b, e.wallMs);
        b += ",\"throughput\":";
        obs::json::appendNumber(b, e.throughput);
        b += ",\"unit\":";
        obs::json::appendString(b, e.unit);
        b += ",\"config\":";
        obs::json::appendString(b, e.config);
        b += ",\"git_rev\":";
        obs::json::appendString(b, e.gitRev);
        b += '}';
    }
    b += "]}";
    out << b << "\n";
}

void
emitMarkdown(std::ostream &out,
             const std::vector<RunSummary> &runs,
             const std::vector<BenchEntry> &bench,
             const std::vector<ExperimentEntry> &experiments)
{
    out << "# ahq report\n";
    if (!runs.empty()) {
        out << "\n## Runs\n\n"
            << "| file | scenario | scheduler | epochs | mean E_S"
               " | final E_S | E_S min | E_S max | E_S p99 | "
               "decisions | spans | faults | alerts | worst burn "
               "|\n"
            << "|---|---|---|---|---|---|---|---|---|---|---|"
               "---|---|---|\n";
        for (const RunSummary &s : runs) {
            out << "| " << s.file << " | "
                << (s.scenario.empty() ? "(untagged)"
                                       : s.scenario)
                << " | " << (s.scheduler.empty() ? "-"
                                                 : s.scheduler)
                << " | " << s.epochs << " | "
                << report::TextTable::num(
                       s.epochs > 0 ? s.sumEs / s.epochs : 0.0)
                << " | " << report::TextTable::num(s.finalEs)
                << " | "
                << (s.hasSeries
                        ? report::TextTable::num(s.esMin) : "-")
                << " | "
                << (s.hasSeries
                        ? report::TextTable::num(s.esMax) : "-")
                << " | "
                << (s.hasSeries
                        ? report::TextTable::num(s.esP99) : "-")
                << " | " << s.decisions << " | " << s.spans
                << " | " << s.faults << " | " << s.alertRaises
                << "/" << s.alertClears << " | "
                << (s.alertRaises > 0
                        ? report::TextTable::num(s.worstBurn)
                        : "-")
                << " |\n";
        }
    }
    if (!experiments.empty()) {
        out << "\n## Experiments\n\n"
            << "| file | scenario | verdict | dE_S mixed "
               "[95% CI] | dp95 (ms) | dviol rate | blocks | "
               "swaps |\n"
            << "|---|---|---|---|---|---|---|---|\n";
        for (const ExperimentEntry &e : experiments) {
            out << "| " << e.file << " | "
                << (e.scenario.empty() ? "(untagged)"
                                       : e.scenario)
                << " | " << e.verdict << " | "
                << report::TextTable::num(e.esMixedEst) << " ["
                << report::TextTable::num(e.esMixedLo) << ", "
                << report::TextTable::num(e.esMixedHi) << "] | "
                << report::TextTable::num(e.p95MixedEst)
                << " | "
                << report::TextTable::num(e.violMixedEst)
                << " | " << e.blocksA << "+" << e.blocksB
                << " | " << e.policySwaps << " |\n";
        }
    }
    if (!bench.empty()) {
        out << "\n## Benchmarks\n\n"
            << "| file | benchmark | wall (ms) | throughput | "
               "unit | config | git rev |\n"
            << "|---|---|---|---|---|---|---|\n";
        for (const BenchEntry &e : bench) {
            out << "| " << e.file << " | " << e.benchmark
                << " | " << report::TextTable::num(e.wallMs)
                << " | "
                << report::TextTable::num(e.throughput) << " | "
                << (e.unit.empty() ? "-" : e.unit) << " | "
                << (e.config.empty() ? "-" : e.config) << " | "
                << (e.gitRev.empty() ? "-" : e.gitRev)
                << " |\n";
        }
    }
    if (runs.empty() && bench.empty() && experiments.empty())
        out << "\n(no runs or benchmarks in the inputs)\n";
}

/** name -> last (wall_ms, throughput) seen, for bench-diff. */
std::map<std::string, std::pair<double, double>>
loadBenchFile(const std::string &path)
{
    std::map<std::string, std::pair<double, double>> entries;
    obs::forEachTraceFile(
        path, [&](const obs::TraceEvent &ev, int) {
            if (ev.type() != "bench") {
                throw std::runtime_error(
                    "not a bench entry (type '" + ev.type() +
                    "'; expected BENCH_*.json from --json)");
            }
            entries[ev.str("benchmark")] = {
                ev.num("wall_ms"), ev.num("throughput")};
        });
    if (entries.empty())
        throw std::runtime_error(path + ": no bench entries");
    return entries;
}

} // namespace

int
runReport(const std::vector<std::string> &args, std::ostream &out,
          std::ostream &err)
{
    std::string format = "json";
    std::string outPath;
    std::vector<std::string> inputs;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        if (a == "--format" || a.rfind("--format=", 0) == 0) {
            if (a == "--format") {
                if (i + 1 >= args.size()) {
                    err << "error: --format needs a value\n";
                    return 2;
                }
                format = args[++i];
            } else {
                format = a.substr(std::string("--format=").size());
            }
            if (format != "json" && format != "md") {
                err << "error: --format must be json or md (got "
                    << format << ")\n";
                return 2;
            }
        } else if (a == "-o" || a == "--output") {
            if (i + 1 >= args.size()) {
                err << "error: " << a << " needs a value\n";
                return 2;
            }
            outPath = args[++i];
        } else if (!a.empty() && a[0] == '-') {
            err << "error: unknown option: " << a << "\n";
            return 2;
        } else {
            inputs.push_back(a);
        }
    }
    if (inputs.empty()) {
        err << "usage: ahq report [--format=json|md] [-o FILE] "
               "<trace.jsonl|BENCH_*.json>...\n";
        return 2;
    }

    std::vector<RunSummary> runs;
    std::vector<BenchEntry> bench;
    std::vector<ExperimentEntry> experiments;
    try {
        for (const auto &path : inputs)
            scanInput(path, runs, bench, experiments);
    } catch (const std::exception &e) {
        err << "error: " << e.what() << "\n";
        return 1;
    }

    std::ofstream file;
    if (!outPath.empty()) {
        file.open(outPath);
        if (!file.is_open()) {
            err << "error: cannot write: " << outPath << "\n";
            return 1;
        }
    }
    std::ostream &dst = outPath.empty() ? out : file;
    if (format == "json")
        emitJson(dst, runs, bench, experiments);
    else
        emitMarkdown(dst, runs, bench, experiments);
    if (!outPath.empty())
        out << "report written to " << outPath << "\n";
    return 0;
}

int
runBenchDiff(const std::vector<std::string> &args,
             std::ostream &out, std::ostream &err)
{
    double threshold = 0.10;
    std::string baseline;
    std::vector<std::string> files;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        std::string value;
        if (a == "--baseline") {
            if (i + 1 >= args.size()) {
                err << "error: --baseline needs a value\n";
                return 2;
            }
            baseline = args[++i];
            continue;
        } else if (a.rfind("--baseline=", 0) == 0) {
            baseline = a.substr(std::string("--baseline=").size());
            continue;
        } else if (a == "--threshold") {
            if (i + 1 >= args.size()) {
                err << "error: --threshold needs a value\n";
                return 2;
            }
            value = args[++i];
        } else if (a.rfind("--threshold=", 0) == 0) {
            value = a.substr(std::string("--threshold=").size());
        } else if (!a.empty() && a[0] == '-') {
            err << "error: unknown option: " << a << "\n";
            return 2;
        } else {
            files.push_back(a);
            continue;
        }
        try {
            threshold = std::stod(value);
        } catch (const std::exception &) {
            threshold = -1.0;
        }
        if (threshold <= 0.0 || threshold >= 1.0) {
            err << "error: --threshold must be a fraction in "
                   "(0, 1), got '"
                << value << "'\n";
            return 2;
        }
    }
    // Either the classic two-positional form, or --baseline plus
    // one positional (the fresh run) — the CI shape, where the
    // baseline is a committed file.
    if (!baseline.empty()) {
        if (files.size() != 1) {
            err << "error: --baseline takes exactly one "
                   "positional file (the new run)\n";
            return 2;
        }
        files.insert(files.begin(), baseline);
    }
    if (files.size() != 2) {
        err << "usage: ahq bench-diff [--threshold=0.10] "
               "[--baseline <old.json>] <old.json> <new.json>\n"
               "       (with --baseline, pass only <new.json>)\n";
        return 2;
    }

    std::map<std::string, std::pair<double, double>> oldB, newB;
    try {
        oldB = loadBenchFile(files[0]);
        newB = loadBenchFile(files[1]);
    } catch (const std::exception &e) {
        err << "error: " << e.what() << "\n";
        return 2;
    }

    report::TextTable t({"benchmark", "wall old (ms)",
                         "wall new (ms)", "wall delta%",
                         "thru old", "thru new", "speedup",
                         "status"});
    int regressions = 0;
    int compared = 0;
    double speedupProduct = 1.0;
    int speedups = 0;
    for (const auto &[name, o] : oldB) {
        const auto it = newB.find(name);
        if (it == newB.end()) {
            t.addRow({name, report::TextTable::num(o.first), "-",
                      "-", report::TextTable::num(o.second), "-",
                      "-", "missing"});
            continue;
        }
        ++compared;
        const auto &n = it->second;
        const double wallPct =
            o.first > 0.0
                ? 100.0 * (n.first - o.first) / o.first
                : 0.0;
        // Per-benchmark speedup ratio: >1 means the new run is
        // faster. Throughput is primary (what baselines track);
        // wall-time inverse fills in for rows without one.
        double speedup = 0.0;
        if (o.second > 0.0 && n.second > 0.0)
            speedup = n.second / o.second;
        else if (o.first > 0.0 && n.first > 0.0)
            speedup = o.first / n.first;
        if (speedup > 0.0) {
            speedupProduct *= speedup;
            ++speedups;
        }
        // Slower wall OR lower throughput beyond the threshold
        // flags the row (each metric is only judged when both
        // files carry it).
        const bool wallBad = o.first > 0.0 && n.first > 0.0 &&
            n.first > o.first * (1.0 + threshold);
        const bool thruBad = o.second > 0.0 && n.second > 0.0 &&
            n.second < o.second * (1.0 - threshold);
        if (wallBad || thruBad)
            ++regressions;
        t.addRow({name, report::TextTable::num(o.first),
                  report::TextTable::num(n.first),
                  report::TextTable::num(wallPct, 1),
                  report::TextTable::num(o.second),
                  report::TextTable::num(n.second),
                  speedup > 0.0
                      ? report::TextTable::num(speedup, 2) + "x"
                      : "-",
                  wallBad || thruBad ? "REGRESSION" : "ok"});
    }
    for (const auto &[name, n] : newB) {
        if (oldB.find(name) == oldB.end()) {
            t.addRow({name, "-",
                      report::TextTable::num(n.first), "-", "-",
                      report::TextTable::num(n.second), "-",
                      "new"});
        }
    }
    t.print(out);
    out << compared << " benchmark(s) compared, " << regressions
        << " regression(s) beyond "
        << report::TextTable::num(threshold * 100.0, 0) << "%";
    if (speedups > 0) {
        // Geometric mean: the one mean that is symmetric under
        // which file is the baseline of a ratio.
        out << ", geomean speedup "
            << report::TextTable::num(
                   std::pow(speedupProduct,
                            1.0 / static_cast<double>(speedups)),
                   2)
            << "x";
    }
    out << "\n";
    return regressions > 0 ? 1 : 0;
}

} // namespace ahq::cli

/**
 * @file
 * `ahq timeline` — render the `series` events of a JSONL trace as
 * per-(scenario, series) timelines: aligned text sparklines with
 * fault / recovery / violation markers (default), CSV rows, or
 * JSON. The series events carry the deterministic folded buckets
 * of the TimeSeriesRegistry (docs/TRACE_SCHEMA.md), so the output
 * here is byte-identical whatever --jobs produced the trace — this
 * is the command-line Fig. 13.
 */

#include "cli.hh"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "obs/json.hh"
#include "obs/scope.hh"
#include "obs/trace_reader.hh"
#include "report/table.hh"

namespace ahq::cli
{

namespace
{

/** One series event's folded buckets, as read back from a trace. */
struct SeriesData
{
    long long stride = 1;
    long long epochs = 0;
    long long capacity = 0;
    long long points = 0;
    std::vector<double> n, min, max, sum;

    /** Buckets actually carried (arrays are truncated to this). */
    std::size_t buckets() const { return n.size(); }
};

/** Epoch markers for one scenario, from fault-family events. */
struct Markers
{
    std::set<int> faults, recoveries, violations;

    /** alert_raise epochs (--slo runs), rendered on their own row. */
    std::set<int> alerts;

    bool empty() const
    {
        return faults.empty() && recoveries.empty() &&
            violations.empty();
    }
};

struct TimelineOptions
{
    std::string path;
    std::string scenario;                // empty = all
    std::vector<std::string> series;     // empty = all
    std::string format = "text";         // text | csv | json
    int width = 64;
};

TimelineOptions
parseTimelineArgs(const std::vector<std::string> &args)
{
    TimelineOptions opt;
    for (std::size_t i = 0; i < args.size(); ++i) {
        std::string a = args[i];
        std::string inline_value;
        bool has_inline = false;
        if (a.rfind("--", 0) == 0) {
            const auto eq = a.find('=');
            if (eq != std::string::npos) {
                inline_value = a.substr(eq + 1);
                a = a.substr(0, eq);
                has_inline = true;
            }
        }
        auto next = [&](const char *flag) -> std::string {
            if (has_inline)
                return inline_value;
            if (i + 1 >= args.size()) {
                throw std::invalid_argument(
                    std::string(flag) + " needs a value");
            }
            return args[++i];
        };
        if (a == "--scenario") {
            opt.scenario = next("--scenario");
        } else if (a == "--series") {
            std::stringstream ss(next("--series"));
            std::string name;
            while (std::getline(ss, name, ','))
                if (!name.empty())
                    opt.series.push_back(name);
        } else if (a == "--format") {
            opt.format = next("--format");
            if (opt.format != "text" && opt.format != "csv" &&
                opt.format != "json") {
                throw std::invalid_argument(
                    "--format must be text, csv or json (got " +
                    opt.format + ")");
            }
        } else if (a == "--width") {
            opt.width = static_cast<int>(
                std::stoll(next("--width")));
            if (opt.width < 8 || opt.width > 4096) {
                throw std::invalid_argument(
                    "--width must be within [8, 4096]");
            }
        } else if (!a.empty() && a[0] == '-') {
            throw std::invalid_argument("unknown option: " + a);
        } else if (opt.path.empty()) {
            opt.path = a;
        } else {
            throw std::invalid_argument(
                "unexpected argument: " + a);
        }
    }
    if (opt.path.empty())
        throw std::invalid_argument("no trace file given");
    return opt;
}

/**
 * Pairwise-fold the bucket arrays in place until at most `width`
 * buckets remain — the same halving the registry itself applies on
 * overflow, so rendering at any width stays consistent with the
 * recorded resolution. Returns the display stride.
 */
long long
foldToWidth(SeriesData &d, int width)
{
    long long stride = d.stride;
    while (d.buckets() > static_cast<std::size_t>(width)) {
        const std::size_t half = (d.buckets() + 1) / 2;
        for (std::size_t i = 0; i < half; ++i) {
            const std::size_t a = 2 * i, b = 2 * i + 1;
            double cnt = d.n[a], mn = d.min[a], mx = d.max[a],
                   sm = d.sum[a];
            if (b < d.buckets() && d.n[b] > 0) {
                if (cnt > 0) {
                    mn = std::min(mn, d.min[b]);
                    mx = std::max(mx, d.max[b]);
                } else {
                    mn = d.min[b];
                    mx = d.max[b];
                }
                cnt += d.n[b];
                sm += d.sum[b];
            }
            d.n[i] = cnt;
            d.min[i] = mn;
            d.max[i] = mx;
            d.sum[i] = sm;
        }
        d.n.resize(half);
        d.min.resize(half);
        d.max.resize(half);
        d.sum.resize(half);
        stride *= 2;
    }
    return stride;
}

/** Count-weighted summary over the (unfolded) buckets. */
struct Summary
{
    double min = 0.0, max = 0.0, mean = 0.0, p99 = 0.0;
    std::uint64_t count = 0;
};

Summary
summarize(const SeriesData &d)
{
    Summary s;
    bool any = false;
    double total_sum = 0.0;
    std::uint64_t total_count = 0;
    // (bucket max, bucket count): the p99 below is the
    // count-weighted 99th percentile of per-bucket maxima — an
    // upper estimate that survives downsampling, since folding
    // preserves maxima exactly.
    std::vector<std::pair<double, std::uint64_t>> maxima;
    for (std::size_t i = 0; i < d.buckets(); ++i) {
        if (d.n[i] <= 0)
            continue;
        const auto cnt = static_cast<std::uint64_t>(d.n[i]);
        if (!any) {
            s.min = d.min[i];
            s.max = d.max[i];
            any = true;
        } else {
            s.min = std::min(s.min, d.min[i]);
            s.max = std::max(s.max, d.max[i]);
        }
        total_sum += d.sum[i];
        total_count += cnt;
        maxima.emplace_back(d.max[i], cnt);
    }
    if (!any)
        return s;
    s.count = total_count;
    s.mean = total_sum / static_cast<double>(total_count);
    std::sort(maxima.begin(), maxima.end());
    const double target =
        0.99 * static_cast<double>(total_count);
    std::uint64_t seen = 0;
    s.p99 = maxima.back().first;
    for (const auto &[mx, cnt] : maxima) {
        seen += cnt;
        if (static_cast<double>(seen) >= target) {
            s.p99 = mx;
            break;
        }
    }
    return s;
}

/** ASCII intensity ramp, low to high (space = empty bucket). */
constexpr std::string_view kRamp = ".:-=+*#%@";

char
rampChar(double value, double lo, double hi)
{
    if (!(hi > lo))
        return kRamp[kRamp.size() / 2];
    double t = (value - lo) / (hi - lo);
    t = std::min(1.0, std::max(0.0, t));
    const auto idx = std::min(
        kRamp.size() - 1,
        static_cast<std::size_t>(
            t * static_cast<double>(kRamp.size())));
    return kRamp[idx];
}

/**
 * One marker char per display bucket: '!' violation beats 'x'
 * fault beats 'r' recovery when several land in the same bucket.
 */
std::string
markerRow(const Markers &m, std::size_t buckets,
          long long display_stride)
{
    std::string row(buckets, ' ');
    auto place = [&](const std::set<int> &epochs, char c) {
        for (int e : epochs) {
            const auto b = static_cast<std::size_t>(
                e / display_stride);
            if (b >= buckets)
                continue;
            // Priority: '!' > 'x' > 'r'.
            if (row[b] == '!' || (row[b] == 'x' && c == 'r'))
                continue;
            row[b] = c;
        }
    };
    place(m.recoveries, 'r');
    place(m.faults, 'x');
    place(m.violations, '!');
    return row;
}

} // namespace

int
runTimeline(const std::vector<std::string> &args, std::ostream &out,
            std::ostream &err)
{
    TimelineOptions opt;
    try {
        opt = parseTimelineArgs(args);
    } catch (const std::exception &e) {
        err << "error: " << e.what() << "\n"
            << "usage: ahq timeline [--series=a,b] "
               "[--scenario=TAG] [--format=text|csv|json] "
               "[--width=N] <file.jsonl>\n";
        return 2;
    }

    // First (and only) pass: collect series events and fault-family
    // markers, everything aggregated before anything is printed.
    std::map<std::pair<std::string, std::string>, SeriesData> data;
    std::map<std::string, Markers> markers;
    const std::set<std::string> wanted(opt.series.begin(),
                                       opt.series.end());
    obs::TraceReadStats stats;
    try {
        obs::forEachTraceFile(
            opt.path,
            [&](const obs::TraceEvent &ev, int) {
                const int v =
                    static_cast<int>(ev.num("v", -1.0));
                if (v != obs::kSchemaVersion) {
                    throw std::runtime_error(
                        "unsupported schema version " +
                        std::to_string(v) +
                        " (this build reads v" +
                        std::to_string(obs::kSchemaVersion) + ")");
                }
                const std::string scenario = ev.str("scenario");
                if (!opt.scenario.empty() &&
                    scenario != opt.scenario)
                    return;
                const std::string type = ev.type();
                if (type == "series") {
                    const std::string name = ev.str("series");
                    if (!wanted.empty() &&
                        wanted.find(name) == wanted.end())
                        return;
                    SeriesData d;
                    d.stride = static_cast<long long>(
                        ev.num("stride", 1.0));
                    d.epochs = static_cast<long long>(
                        ev.num("epochs"));
                    d.capacity = static_cast<long long>(
                        ev.num("capacity"));
                    d.points = static_cast<long long>(
                        ev.num("points"));
                    d.n = ev.nums("n");
                    d.min = ev.nums("min");
                    d.max = ev.nums("max");
                    d.sum = ev.nums("sum");
                    if (d.stride < 1)
                        d.stride = 1;
                    // Tolerate short arrays (foreign writers):
                    // clip to the common length.
                    const std::size_t len = std::min(
                        {d.n.size(), d.min.size(), d.max.size(),
                         d.sum.size()});
                    d.n.resize(len);
                    d.min.resize(len);
                    d.max.resize(len);
                    d.sum.resize(len);
                    data[{scenario, name}] = std::move(d);
                } else if (type == "fault" ||
                           type == "recovery" ||
                           type == "violation" ||
                           type == "alert_raise") {
                    const int epoch = static_cast<int>(
                        ev.num("epoch", -1.0));
                    if (epoch < 0)
                        return;
                    auto &m = markers[scenario];
                    if (type == "fault")
                        m.faults.insert(epoch);
                    else if (type == "recovery")
                        m.recoveries.insert(epoch);
                    else if (type == "alert_raise")
                        m.alerts.insert(epoch);
                    else
                        m.violations.insert(epoch);
                }
            },
            &stats);
    } catch (const std::exception &e) {
        err << "error: " << e.what() << "\n";
        return 1;
    }
    if (data.empty()) {
        err << "error: " << opt.path
            << ": no matching series events (produce them with "
               "--trace; series land at the end of the trace)\n";
        return 1;
    }

    if (opt.format == "csv") {
        out << "scenario,series,bucket,epoch_lo,stride,count,min,"
               "max,mean\n";
        for (const auto &[key, d] : data) {
            for (std::size_t i = 0; i < d.buckets(); ++i) {
                out << key.first << "," << key.second << "," << i
                    << "," << (static_cast<long long>(i) * d.stride)
                    << "," << d.stride << ","
                    << static_cast<long long>(d.n[i]);
                if (d.n[i] > 0) {
                    std::string cells;
                    cells.push_back(',');
                    obs::json::appendNumber(cells, d.min[i]);
                    cells.push_back(',');
                    obs::json::appendNumber(cells, d.max[i]);
                    cells.push_back(',');
                    obs::json::appendNumber(cells,
                                      d.sum[i] / d.n[i]);
                    out << cells;
                } else {
                    out << ",,,";
                }
                out << "\n";
            }
        }
        if (stats.unknownEvents > 0) {
            err << "note: " << stats.unknownEvents
                << " unknown event(s) ignored\n";
        }
        return 0;
    }

    if (opt.format == "json") {
        std::string buf;
        buf += "{\"v\":1,\"series\":[";
        bool first = true;
        for (const auto &[key, d] : data) {
            if (!first)
                buf.push_back(',');
            first = false;
            buf += "{\"scenario\":";
            obs::json::appendString(buf, key.first);
            buf += ",\"series\":";
            obs::json::appendString(buf, key.second);
            buf += ",\"stride\":";
            obs::json::appendNumber(buf, d.stride);
            buf += ",\"epochs\":";
            obs::json::appendNumber(buf, d.epochs);
            buf += ",\"points\":";
            obs::json::appendNumber(buf, d.points);
            auto arr = [&](const char *name,
                           const std::vector<double> &vals) {
                buf += ",\"";
                buf += name;
                buf += "\":[";
                for (std::size_t i = 0; i < vals.size(); ++i) {
                    if (i)
                        buf.push_back(',');
                    obs::json::appendNumber(buf, vals[i]);
                }
                buf.push_back(']');
            };
            arr("n", d.n);
            arr("min", d.min);
            arr("max", d.max);
            arr("sum", d.sum);
            buf.push_back('}');
        }
        buf += "],\"markers\":[";
        first = true;
        for (const auto &[scenario, m] : markers) {
            auto list = [&](const std::set<int> &epochs,
                            const char *kind) {
                for (int e : epochs) {
                    if (!first)
                        buf.push_back(',');
                    first = false;
                    buf += "{\"scenario\":";
                    obs::json::appendString(buf, scenario);
                    buf += ",\"type\":";
                    obs::json::appendString(buf, kind);
                    buf += ",\"epoch\":";
                    obs::json::appendNumber(
                        buf, static_cast<long long>(e));
                    buf.push_back('}');
                }
            };
            list(m.faults, "fault");
            list(m.recoveries, "recovery");
            list(m.violations, "violation");
            list(m.alerts, "alert_raise");
        }
        buf += "]}";
        out << buf << "\n";
        if (stats.unknownEvents > 0) {
            err << "note: " << stats.unknownEvents
                << " unknown event(s) ignored\n";
        }
        return 0;
    }

    // Text mode: aligned sparklines, one block per
    // (scenario, series), sorted — deterministic whatever order
    // the events appeared in.
    out << opt.path << ": " << data.size() << " series (schema v"
        << obs::kSchemaVersion << ")\n";
    for (const auto &[key, original] : data) {
        const Summary s = summarize(original);
        SeriesData d = original;
        const long long display_stride = foldToWidth(d, opt.width);

        out << "\n"
            << (key.first.empty() ? "(untagged)" : key.first)
            << " :: " << key.second << "  (epochs=" << d.epochs
            << ", stride=" << original.stride
            << ", points=" << original.points << ")\n";
        if (s.count == 0) {
            out << "  (empty)\n";
            continue;
        }
        out << "  min=" << report::TextTable::num(s.min)
            << "  mean=" << report::TextTable::num(s.mean)
            << "  max=" << report::TextTable::num(s.max)
            << "  p99=" << report::TextTable::num(s.p99) << "\n";

        // Sparkline over bucket means, scaled to this series'
        // own [min, max] so shape survives unit differences.
        std::string line;
        line.reserve(d.buckets());
        for (std::size_t i = 0; i < d.buckets(); ++i) {
            line.push_back(
                d.n[i] > 0
                    ? rampChar(d.sum[i] / d.n[i], s.min, s.max)
                    : ' ');
        }
        out << "  |" << line << "|\n";

        const auto mit = markers.find(key.first);
        if (mit != markers.end() && !mit->second.empty()) {
            const std::string row = markerRow(
                mit->second, d.buckets(), display_stride);
            out << "  |" << row << "|  x=fault r=recovery "
                << "!=violation\n";
        }
        // SLO alerts get their own aligned row so a raise is
        // never masked by a violation in the same bucket.
        if (mit != markers.end() && !mit->second.alerts.empty()) {
            std::string row(d.buckets(), ' ');
            for (int e : mit->second.alerts) {
                const auto b = static_cast<std::size_t>(
                    e / display_stride);
                if (b < row.size())
                    row[b] = 'A';
            }
            out << "  |" << row << "|  A=alert_raise\n";
        }
    }
    if (stats.unknownEvents > 0) {
        out << "\n(" << stats.unknownEvents
            << " unknown event(s) ignored";
        for (const auto &[type, count] : stats.unknownTypes)
            out << "; " << type << " x" << count;
        out << ")\n";
    }
    return 0;
}

} // namespace ahq::cli

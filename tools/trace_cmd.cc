/**
 * @file
 * `ahq trace` — summarise a JSONL decision trace produced with
 * --trace / AHQ_TRACE: per-scenario epoch counts and E_S timeline,
 * scheduler decision totals (adjustments, rollbacks, bans) and the
 * per-app remaining-tolerance summary from ARQ decision events.
 */

#include "cli.hh"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "obs/scope.hh"
#include "obs/trace_reader.hh"
#include "report/ascii_chart.hh"
#include "report/table.hh"

namespace ahq::cli
{

namespace
{

/** Aggregates for one scenario (one run within the trace). */
struct ScenarioSummary
{
    std::string scheduler;
    int epochs = 0;
    double lastEs = 0.0;
    double sumEs = 0.0;
    std::vector<double> ts, es;

    // Decision totals across arq/parties/clite events.
    int adjustments = 0;
    int rollbacks = 0;
    int bans = 0;
    int holds = 0;

    // Event families the summary previously skipped silently.
    int faults = 0;
    int recoveries = 0;
    int violations = 0;
    int spans = 0;
    int series = 0;

    /** Per-app ReT statistics from arq_decision events. */
    struct AppRet
    {
        int samples = 0;
        double sumRet = 0.0;
        double minRet = 2.0;
        double sumQ = 0.0;
    };
    std::map<int, AppRet> retByApp;
};

bool
isAdjustAction(const std::string &action)
{
    return action == "move" || action == "upsize" ||
        action == "downsize_trial" || action == "sample" ||
        action == "exploit";
}

} // namespace

int
runTrace(const std::vector<std::string> &args, std::ostream &out,
         std::ostream &err)
{
    if (args.size() != 1) {
        err << "usage: ahq trace <file.jsonl>\n";
        return 2;
    }

    // Streamed: one line at a time (multi-GB traces read in
    // constant memory), everything aggregated before anything is
    // printed so a malformed line never leaves partial output.
    std::vector<std::string> order; // scenario tags, first-seen
    std::map<std::string, ScenarioSummary> scenarios;
    auto summary = [&](const obs::TraceEvent &ev)
        -> ScenarioSummary & {
        const std::string tag = ev.str("scenario");
        if (scenarios.find(tag) == scenarios.end())
            order.push_back(tag);
        return scenarios[tag];
    };

    std::size_t num_events = 0;
    obs::TraceReadStats stats;
    try {
        obs::forEachTraceFile(args[0], [&](
                                           const obs::TraceEvent
                                               &ev,
                                           int) {
            ++num_events;
            const int v = static_cast<int>(ev.num("v", -1.0));
            if (v != obs::kSchemaVersion) {
                throw std::runtime_error(
                    "unsupported schema version " +
                    std::to_string(v) + " (this build reads v" +
                    std::to_string(obs::kSchemaVersion) + ")");
            }
            const std::string type = ev.type();
            if (type == "run_start") {
                summary(ev).scheduler = ev.str("scheduler");
            } else if (type == "epoch") {
                auto &s = summary(ev);
                ++s.epochs;
                s.lastEs = ev.num("e_s");
                s.sumEs += s.lastEs;
                s.ts.push_back(ev.num("t"));
                s.es.push_back(s.lastEs);
            } else if (type == "arq_decision") {
                auto &s = summary(ev);
                const std::string action = ev.str("action");
                if (action == "move")
                    ++s.adjustments;
                else if (action == "rollback")
                    ++s.rollbacks;
                else if (action == "hold")
                    ++s.holds;
                if (ev.has("ban_region"))
                    ++s.bans;
                const auto apps = ev.nums("apps");
                const auto ret = ev.nums("ret");
                const auto q = ev.nums("q");
                for (std::size_t i = 0;
                     i < apps.size() && i < ret.size(); ++i) {
                    auto &r =
                        s.retByApp[static_cast<int>(apps[i])];
                    ++r.samples;
                    r.sumRet += ret[i];
                    r.minRet = std::min(r.minRet, ret[i]);
                    if (i < q.size())
                        r.sumQ += q[i];
                }
            } else if (type == "parties_decision" ||
                       type == "clite_decision") {
                auto &s = summary(ev);
                const std::string action = ev.str("action");
                if (isAdjustAction(action))
                    ++s.adjustments;
                else if (action == "revert" ||
                         action == "re_explore")
                    ++s.rollbacks;
            } else if (type == "fault") {
                ++summary(ev).faults;
            } else if (type == "recovery") {
                ++summary(ev).recoveries;
            } else if (type == "violation") {
                ++summary(ev).violations;
            } else if (type == "span") {
                ++summary(ev).spans;
            } else if (type == "series") {
                ++summary(ev).series;
            }
        }, &stats);
    } catch (const std::exception &e) {
        err << "error: " << e.what() << "\n";
        return 1;
    }
    if (num_events == 0) {
        err << "error: " << args[0] << ": empty trace\n";
        return 1;
    }

    int total_epochs = 0;
    for (const auto &[tag, s] : scenarios)
        total_epochs += s.epochs;
    out << args[0] << ": " << num_events << " events, "
        << scenarios.size() << " scenario(s), " << total_epochs
        << " epochs (schema v" << obs::kSchemaVersion << ")\n";
    if (stats.unknownEvents > 0) {
        // Foreign / future-schema event types must never vanish
        // silently — name them (the reader also bumps the
        // reader.unknown_events metric).
        out << "unknown event types (" << stats.unknownEvents
            << " event(s) outside the schema taxonomy):";
        for (const auto &[type, count] : stats.unknownTypes)
            out << " " << type << " x" << count;
        out << "\n";
    }

    // Per-scenario run summary and decision totals.
    report::TextTable t({"scenario", "scheduler", "epochs",
                         "mean E_S", "final E_S", "adjustments",
                         "rollbacks", "bans"});
    for (const auto &tag : order) {
        const auto &s = scenarios[tag];
        t.addRow({tag.empty() ? "(untagged)" : tag,
                  s.scheduler.empty() ? "-" : s.scheduler,
                  std::to_string(s.epochs),
                  s.epochs > 0 ?
                      report::TextTable::num(s.sumEs / s.epochs) :
                      "-",
                  s.epochs > 0 ?
                      report::TextTable::num(s.lastEs) : "-",
                  std::to_string(s.adjustments),
                  std::to_string(s.rollbacks),
                  std::to_string(s.bans)});
    }
    t.print(out);

    // Telemetry events beyond the decision stream (previously
    // read but never surfaced).
    bool any_telemetry = false;
    for (const auto &[tag, s] : scenarios) {
        any_telemetry = any_telemetry || s.faults > 0 ||
            s.recoveries > 0 || s.violations > 0 || s.spans > 0 ||
            s.series > 0;
    }
    if (any_telemetry) {
        report::TextTable tt({"scenario", "faults", "recoveries",
                              "violations", "spans", "series"});
        for (const auto &tag : order) {
            const auto &s = scenarios[tag];
            tt.addRow({tag.empty() ? "(untagged)" : tag,
                       std::to_string(s.faults),
                       std::to_string(s.recoveries),
                       std::to_string(s.violations),
                       std::to_string(s.spans),
                       std::to_string(s.series)});
        }
        out << "telemetry events:\n";
        tt.print(out);
    }

    // E_S timeline (the first few scenarios with epoch events keep
    // the chart readable; the table above covers the rest).
    std::vector<report::Series> series;
    for (const auto &tag : order) {
        const auto &s = scenarios[tag];
        if (s.ts.empty() || series.size() >= 6)
            continue;
        series.push_back(
            {tag.empty() ? "E_S" : tag, s.ts, s.es});
    }
    if (!series.empty()) {
        report::lineChart(out, series, 72, 16,
                          "E_S per epoch (x = time s)");
    }

    // Per-app remaining tolerance, from ARQ decision events.
    bool any_ret = false;
    for (const auto &[tag, s] : scenarios)
        any_ret = any_ret || !s.retByApp.empty();
    if (any_ret) {
        report::TextTable rt({"scenario", "app", "mean ReT",
                              "min ReT", "mean Q"});
        for (const auto &tag : order) {
            const auto &s = scenarios[tag];
            for (const auto &[app, r] : s.retByApp) {
                rt.addRow({tag.empty() ? "(untagged)" : tag,
                           "app" + std::to_string(app),
                           report::TextTable::num(
                               r.sumRet / r.samples),
                           report::TextTable::num(r.minRet),
                           report::TextTable::num(
                               r.sumQ / r.samples)});
            }
        }
        out << "remaining tolerance (ARQ decisions):\n";
        rt.print(out);
    }

    // Read-stats footer: what the streaming reader actually saw,
    // including lines that produced no event at all.
    out << "reader: " << stats.events << " event(s) parsed, "
        << stats.skippedLines << " blank line(s) skipped, "
        << stats.unknownEvents << " outside the schema taxonomy\n";
    return 0;
}

} // namespace ahq::cli

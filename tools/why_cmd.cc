/**
 * @file
 * `ahq why` — answer "who is hurting my LC app, and through which
 * resource" from a JSONL trace produced with --trace --attribute:
 * fold the per-epoch `attribution` events back into the
 * per-(victim, culprit, resource) blame ledger and print it sorted
 * by attributed interference share. Because every share is a slice
 * of the victim's per-epoch R_i (they sum to it exactly), the
 * table's units are "summed entropy interference" — directly
 * comparable across victims and culprits.
 */

#include "cli.hh"

#include <algorithm>
#include <stdexcept>

#include "obs/attribution.hh"
#include "obs/json.hh"
#include "obs/scope.hh"
#include "obs/trace_reader.hh"
#include "report/table.hh"

namespace ahq::cli
{

namespace
{

struct WhyOptions
{
    std::string path;
    std::string scenario; // empty = all
    std::string app;      // victim filter; empty = all
    std::size_t top = 0;  // 0 = every row
    std::string format = "text"; // text | csv | json
};

WhyOptions
parseWhyArgs(const std::vector<std::string> &args)
{
    WhyOptions opt;
    for (std::size_t i = 0; i < args.size(); ++i) {
        std::string a = args[i];
        std::string inline_value;
        bool has_inline = false;
        if (a.rfind("--", 0) == 0) {
            const auto eq = a.find('=');
            if (eq != std::string::npos) {
                inline_value = a.substr(eq + 1);
                a = a.substr(0, eq);
                has_inline = true;
            }
        }
        auto next = [&](const char *flag) -> std::string {
            if (has_inline)
                return inline_value;
            if (i + 1 >= args.size()) {
                throw std::invalid_argument(
                    std::string(flag) + " needs a value");
            }
            return args[++i];
        };
        if (a == "--scenario") {
            opt.scenario = next("--scenario");
        } else if (a == "--app") {
            opt.app = next("--app");
        } else if (a == "--top") {
            const long long v = std::stoll(next("--top"));
            if (v < 1) {
                throw std::invalid_argument(
                    "--top must be >= 1");
            }
            opt.top = static_cast<std::size_t>(v);
        } else if (a == "--format") {
            opt.format = next("--format");
            if (opt.format != "text" && opt.format != "csv" &&
                opt.format != "json") {
                throw std::invalid_argument(
                    "--format must be text, csv or json (got " +
                    opt.format + ")");
            }
        } else if (!a.empty() && a[0] == '-') {
            throw std::invalid_argument("unknown option: " + a);
        } else if (opt.path.empty()) {
            opt.path = a;
        } else {
            throw std::invalid_argument(
                "unexpected argument: " + a);
        }
    }
    if (opt.path.empty())
        throw std::invalid_argument("no trace file given");
    return opt;
}

} // namespace

int
runWhy(const std::vector<std::string> &args, std::ostream &out,
       std::ostream &err)
{
    WhyOptions opt;
    try {
        opt = parseWhyArgs(args);
    } catch (const std::exception &e) {
        err << "error: " << e.what() << "\n"
            << "usage: ahq why [--scenario=TAG] [--app=NAME] "
               "[--top=N] [--format=text|csv|json] "
               "<file.jsonl>\n";
        return 2;
    }

    // Everything aggregates before anything prints, so a malformed
    // line never leaves partial output.
    obs::AttributionLedger ledger;
    long long events = 0;
    try {
        obs::forEachTraceFile(
            opt.path, [&](const obs::TraceEvent &ev, int) {
                const int v =
                    static_cast<int>(ev.num("v", -1.0));
                if (v != obs::kSchemaVersion) {
                    throw std::runtime_error(
                        "unsupported schema version " +
                        std::to_string(v) +
                        " (this build reads v" +
                        std::to_string(obs::kSchemaVersion) + ")");
                }
                if (ev.type() != "attribution")
                    return;
                if (!opt.scenario.empty() &&
                    ev.str("scenario") != opt.scenario)
                    return;
                const std::string victim = ev.str("app");
                if (!opt.app.empty() && victim != opt.app)
                    return;
                const auto culprits = ev.strs("culprits");
                const auto resources = ev.strs("resources");
                const auto shares = ev.nums("shares");
                const std::size_t len =
                    std::min({culprits.size(), resources.size(),
                              shares.size()});
                for (std::size_t i = 0; i < len; ++i)
                    ledger.add(victim, culprits[i], resources[i],
                               shares[i]);
                ++events;
            });
    } catch (const std::exception &e) {
        err << "error: " << e.what() << "\n";
        return 1;
    }
    if (events == 0) {
        err << "error: " << opt.path
            << ": no matching attribution events (produce them "
               "with --trace --attribute)\n";
        return 1;
    }

    auto rows = ledger.rows();
    std::stable_sort(rows.begin(), rows.end(),
                     [](const obs::AttributionRow &a,
                        const obs::AttributionRow &b) {
                         return a.share > b.share;
                     });
    if (opt.top > 0 && rows.size() > opt.top)
        rows.resize(opt.top);

    if (opt.format == "csv") {
        out << "victim,culprit,resource,share,epochs\n";
        for (const auto &r : rows) {
            std::string line = r.victim + "," + r.culprit + "," +
                r.resource + ",";
            obs::json::appendNumber(line, r.share);
            out << line << "," << r.epochs << "\n";
        }
        return 0;
    }

    if (opt.format == "json") {
        std::string b;
        b += "{\"v\":1,\"tool\":\"ahq why\",\"rows\":[";
        for (std::size_t i = 0; i < rows.size(); ++i) {
            if (i > 0)
                b.push_back(',');
            b += "{\"victim\":";
            obs::json::appendString(b, rows[i].victim);
            b += ",\"culprit\":";
            obs::json::appendString(b, rows[i].culprit);
            b += ",\"resource\":";
            obs::json::appendString(b, rows[i].resource);
            b += ",\"share\":";
            obs::json::appendNumber(b, rows[i].share);
            b += ",\"epochs\":";
            obs::json::appendNumber(b, rows[i].epochs);
            b.push_back('}');
        }
        b += "]}";
        out << b << "\n";
        return 0;
    }

    out << opt.path << ": " << events
        << " attribution event(s) (schema v" << obs::kSchemaVersion
        << ")\n";
    printBlameTable(out, ledger, opt.top);
    // Per-victim totals: each victim's row sums its per-epoch R_i
    // over the attributed epochs — the conservation the ledger
    // carries by construction.
    std::vector<std::string> victims;
    for (const auto &r : ledger.rows()) {
        if (std::find(victims.begin(), victims.end(), r.victim) ==
            victims.end())
            victims.push_back(r.victim);
    }
    std::sort(victims.begin(), victims.end());
    out << "per-victim summed R_i:";
    for (const auto &v : victims) {
        out << "  " << v << " = "
            << report::TextTable::num(ledger.victimTotal(v))
            << " (top blame: " << ledger.topBlame(v) << ")";
    }
    out << "\n";
    return 0;
}

} // namespace ahq::cli
